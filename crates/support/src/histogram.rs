//! A log-bucketed latency histogram with lock-free atomic recording
//! and exact-deterministic quantile extraction.
//!
//! The service plane needs latency *distributions*, not min/median/max
//! triples: tail latency (p99, p999) is invisible to order statistics
//! computed over a capped sample vector, and a shared `Mutex<Vec<u64>>`
//! serializes the very hot path being measured. This histogram is the
//! HDR-style answer sized for a zero-dep workspace:
//!
//! * **Fixed size.** [`BUCKET_COUNT`] buckets cover half-octave
//!   (~2 buckets per power of two) ranges from 1 ns to ~52 bits of
//!   nanoseconds (≈ 52 days); everything above lands in a terminal
//!   overflow bucket. No allocation after construction, ever.
//! * **Lock-free recording.** [`Histogram::record`] is one relaxed
//!   `fetch_add` on the value's bucket — safe from any number of
//!   threads, nanosecond-scale, and never a contention point because
//!   different latencies hit different cache lines.
//! * **Deterministic quantiles.** A [`Snapshot`] extracts quantiles by
//!   nearest-rank walk over the bucket totals: the same totals always
//!   produce the same answer, so tests can pin values exactly. The
//!   reported value is the bucket midpoint; with half-octave buckets
//!   the relative error is bounded by ±25% of the true sample
//!   (see [`Snapshot::quantile`]).
//! * **Mergeable.** Bucket-wise addition is associative and
//!   commutative, so per-thread or per-phase histograms fold into
//!   totals without coordination.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: `0` holds zeros, `1` holds ones (octave 0 has a
/// single representable value), octaves `1..OCTAVES` get two half
/// buckets each, and the last index absorbs overflow.
pub const BUCKET_COUNT: usize = 2 * OCTAVES + 1;

/// Powers of two covered with half-octave resolution. 2^52 ns is about
/// 52 days — beyond any latency a request-scoped histogram can see.
const OCTAVES: usize = 52;

/// Maps a value to its bucket index. Total order is preserved:
/// `a <= b` implies `index(a) <= index(b)`.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value <= 1 {
        return value as usize; // 0 → bucket 0, 1 → bucket 1
    }
    let octave = 63 - value.leading_zeros() as usize; // floor(log2), >= 1
    if octave >= OCTAVES {
        return BUCKET_COUNT - 1;
    }
    // Split [2^k, 2^(k+1)) at its midpoint 1.5 * 2^k: the bit below
    // the MSB selects the half.
    2 * octave + ((value >> (octave - 1)) & 1) as usize
}

/// The `[lo, hi)` value range a bucket covers. Bucket 0 is `[0, 1)`;
/// the terminal bucket's `hi` is `u64::MAX`.
#[must_use]
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    if index <= 1 {
        return (index as u64, index as u64 + 1);
    }
    if index >= BUCKET_COUNT - 1 {
        return (1 << OCTAVES, u64::MAX);
    }
    let octave = index / 2; // >= 1
    let half = 1u64 << (octave - 1);
    let lo = (1u64 << octave) + (index % 2) as u64 * half;
    (lo, lo + half)
}

/// A fixed-size, lock-free histogram. Construct with
/// [`Histogram::new`], record from any thread, snapshot to read.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram. `const`: usable in statics.
    #[must_use]
    pub const fn new() -> Histogram {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; BUCKET_COUNT],
        }
    }

    /// Records one value: a single relaxed `fetch_add`.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Folds another histogram's counts into this one (bucket-wise
    /// addition — associative and commutative).
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Total recorded count.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// A point-in-time copy of the bucket totals. Concurrent recording
    /// keeps going; the snapshot is internally consistent per bucket
    /// (each bucket total is exact as of its own load).
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let mut counts = [0u64; BUCKET_COUNT];
        for (c, b) in counts.iter_mut().zip(self.buckets.iter()) {
            *c = b.load(Ordering::Relaxed);
        }
        Snapshot { counts }
    }
}

/// An immutable copy of a histogram's bucket totals, with quantile
/// extraction and merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    counts: [u64; BUCKET_COUNT],
}

impl Default for Snapshot {
    fn default() -> Self {
        Snapshot::empty()
    }
}

impl Snapshot {
    /// A snapshot with every bucket zero.
    #[must_use]
    pub const fn empty() -> Snapshot {
        Snapshot {
            counts: [0; BUCKET_COUNT],
        }
    }

    /// Total count across all buckets.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Bucket-wise sum (associative, commutative).
    #[must_use]
    pub fn merged(&self, other: &Snapshot) -> Snapshot {
        let mut counts = self.counts;
        for (c, o) in counts.iter_mut().zip(other.counts.iter()) {
            *c = c.saturating_add(*o);
        }
        Snapshot { counts }
    }

    /// The nearest-rank quantile, reported as its bucket's midpoint.
    ///
    /// `q` is clamped to `[0, 1]`; an empty snapshot reports 0. For a
    /// value in bucket `[lo, hi)` the midpoint is off by at most half
    /// the bucket width — ±25% relative for half-octave buckets — and
    /// the answer is a pure function of the bucket totals, so repeated
    /// extraction is exactly deterministic.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank: the smallest rank r (1-based) with r/total >= q.
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(i);
                return lo + (hi.saturating_sub(lo)) / 2;
            }
        }
        0 // unreachable: seen == total >= rank by the loop's end
    }

    /// The midpoint of the highest nonzero bucket (0 when empty) — an
    /// upper-bucket estimate of the maximum recorded value.
    #[must_use]
    pub fn max_value(&self) -> u64 {
        for i in (0..BUCKET_COUNT).rev() {
            if self.counts[i] > 0 {
                let (lo, hi) = bucket_bounds(i);
                return lo + (hi.saturating_sub(lo)) / 2;
            }
        }
        0
    }

    /// Sparse `(bucket_index, count)` pairs for nonzero buckets —
    /// the wire form used by `aov-svcmetrics/1`.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Rebuilds a snapshot from sparse pairs (out-of-range indices are
    /// ignored; duplicate indices accumulate).
    #[must_use]
    pub fn from_buckets(pairs: &[(usize, u64)]) -> Snapshot {
        let mut counts = [0u64; BUCKET_COUNT];
        for &(i, c) in pairs {
            if i < BUCKET_COUNT {
                counts[i] = counts[i].saturating_add(c);
            }
        }
        Snapshot { counts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn bucket_index_is_monotone_and_bounds_are_consistent() {
        // Every bucket's bounds tile the line: index(v) == i for all v
        // in [lo, hi) — spot-check the edges of every bucket.
        for i in 0..BUCKET_COUNT - 1 {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo < hi, "bucket {i}: empty range [{lo}, {hi})");
            assert_eq!(bucket_index(lo), i, "lo edge of bucket {i}");
            assert_eq!(bucket_index(hi - 1), i, "hi edge of bucket {i}");
            let (next_lo, _) = bucket_bounds(i + 1);
            assert_eq!(hi, next_lo, "gap between buckets {i} and {}", i + 1);
        }
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
        // Monotone over a few decades.
        let mut prev = 0;
        for v in [0u64, 1, 2, 3, 5, 8, 100, 1_000, 1_000_000, 1 << 40, 1 << 60] {
            let i = bucket_index(v);
            assert!(i >= prev, "index not monotone at {v}");
            prev = i;
        }
    }

    #[test]
    fn quantiles_track_exact_sort_within_bucket_error() {
        // Seeded log-uniform samples: histogram quantiles must land
        // within half-octave bucket error (±25% relative, i.e. within
        // a factor of 1.5) of the exact nearest-rank answer.
        let mut rng = Rng::new(0x4157_0001);
        let hist = Histogram::new();
        let mut samples: Vec<u64> = (0..10_000)
            .map(|_| {
                let octave = rng.next_u64() % 30; // 1 ns .. ~1 s
                let base = 1u64 << octave;
                base + rng.next_u64() % base.max(1)
            })
            .collect();
        for &s in &samples {
            hist.record(s);
        }
        samples.sort_unstable();
        let snap = hist.snapshot();
        assert_eq!(snap.count(), samples.len() as u64);
        for q in [0.5, 0.9, 0.99, 0.999] {
            #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1];
            let approx = snap.quantile(q);
            let lo = exact as f64 / 1.5;
            let hi = exact as f64 * 1.5;
            assert!(
                (approx as f64) >= lo && (approx as f64) <= hi,
                "q={q}: approx {approx} outside [{lo}, {hi}] around exact {exact}"
            );
        }
    }

    #[test]
    fn quantile_extraction_is_deterministic() {
        let snap = Snapshot::from_buckets(&[(10, 3), (20, 5), (40, 2)]);
        let first: Vec<u64> = [0.0, 0.5, 0.9, 0.99, 1.0]
            .iter()
            .map(|&q| snap.quantile(q))
            .collect();
        for _ in 0..10 {
            let again: Vec<u64> = [0.0, 0.5, 0.9, 0.99, 1.0]
                .iter()
                .map(|&q| snap.quantile(q))
                .collect();
            assert_eq!(first, again);
        }
        // p100 lands in the highest nonzero bucket.
        assert_eq!(snap.quantile(1.0), snap.max_value());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        // Bucket totals are exact under contention: every fetch_add
        // lands, so the final distribution is deterministic regardless
        // of interleaving.
        let hist = Histogram::new();
        let per_thread = 50_000u64;
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let hist = &hist;
                s.spawn(move || {
                    let mut rng = Rng::new(0xc0de + t);
                    for _ in 0..per_thread {
                        hist.record(1 + rng.next_u64() % 1_000_000);
                    }
                });
            }
        });
        assert_eq!(hist.count(), 4 * per_thread);
        // Replaying the same seeds serially yields identical totals.
        let serial = Histogram::new();
        for t in 0..4u64 {
            let mut rng = Rng::new(0xc0de + t);
            for _ in 0..per_thread {
                serial.record(1 + rng.next_u64() % 1_000_000);
            }
        }
        assert_eq!(hist.snapshot(), serial.snapshot());
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |seed: u64, n: usize| {
            let mut rng = Rng::new(seed);
            let h = Histogram::new();
            for _ in 0..n {
                h.record(rng.next_u64() % 1_000_000_000);
            }
            h.snapshot()
        };
        let (a, b, c) = (mk(1, 500), mk(2, 700), mk(3, 300));
        assert_eq!(a.merged(&b), b.merged(&a));
        assert_eq!(a.merged(&b).merged(&c), a.merged(&b.merged(&c)));
        assert_eq!(a.merged(&b).count(), a.count() + b.count());
        // Histogram-level merge matches snapshot-level merge.
        let h = Histogram::new();
        let other = Histogram::new();
        let mut rng = Rng::new(4);
        for _ in 0..100 {
            h.record(rng.next_u64() % 1_000);
            other.record(rng.next_u64() % 1_000_000);
        }
        let expect = h.snapshot().merged(&other.snapshot());
        h.merge_from(&other);
        assert_eq!(h.snapshot(), expect);
    }

    #[test]
    fn sparse_roundtrip_preserves_the_snapshot() {
        let mut rng = Rng::new(7);
        let h = Histogram::new();
        for _ in 0..1_000 {
            h.record(rng.next_u64() % 10_000_000);
        }
        let snap = h.snapshot();
        let pairs = snap.nonzero_buckets();
        assert_eq!(Snapshot::from_buckets(&pairs), snap);
        assert!(pairs.iter().all(|&(_, c)| c > 0));
    }

    #[test]
    fn empty_and_zero_edge_cases() {
        let snap = Snapshot::empty();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.max_value(), 0);
        let h = Histogram::new();
        h.record(0);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1);
        assert_eq!(snap.quantile(0.5), 0); // bucket 0 midpoint is 0
    }

    // Not a correctness test: the EXPERIMENTS.md overhead numbers come
    // from here. Run with
    //   cargo test -p aov-support --release -- --ignored \
    //     measure_record_cost --nocapture
    #[test]
    #[ignore = "measurement, run explicitly"]
    fn measure_record_cost() {
        let h = Histogram::new();
        let n: u64 = 10_000_000;
        let start = std::time::Instant::now();
        for i in 0..n {
            // Mixed values across octaves, like real latencies.
            h.record(i.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 16);
        }
        let elapsed = start.elapsed();
        println!(
            "histogram record: {n} records in {elapsed:?} -> {:.2} ns/record",
            elapsed.as_nanos() as f64 / n as f64
        );
        assert_eq!(h.snapshot().count(), n);
    }
}
