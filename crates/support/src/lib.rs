//! Hermetic runtime substrate for the `aov` workspace.
//!
//! The crates-io registry is not available in every environment this
//! repository builds in, so everything the workspace previously pulled
//! from external crates lives here instead, with no dependencies beyond
//! `std`:
//!
//! * [`rng`] — deterministic SplitMix64 / xoshiro256\*\* PRNG (replaces
//!   `rand` for seeded test-input generation),
//! * [`json`] — a minimal JSON value with a compact/pretty writer and
//!   a parser (replaces `serde`/`serde_json` for report dumps and
//!   read-back),
//! * [`bench`] — a wall-clock micro-benchmark harness with warmup and
//!   per-iteration statistics (replaces `criterion`),
//! * [`prop`] + [`props!`] — a seeded property-test runner (replaces
//!   `proptest`): failures report the case index and per-case seed so
//!   they reproduce exactly,
//! * [`counters`] + [`static_counter!`] — a process-global registry of
//!   named atomic counters used by the solver stack (simplex pivots,
//!   branch-and-bound nodes, Fourier–Motzkin eliminations, …) and read
//!   back by `aov-engine` reports,
//! * [`schema`] — a structural checker for versioned JSON artifacts
//!   (`BENCH_*.json`) with path-annotated mismatch reports,
//! * [`digest`] — FNV-1a content digests used to fingerprint figure
//!   outputs inside perf artifacts,
//! * [`alloc`] — a counting `#[global_allocator]` wrapper with
//!   per-scope (per-span) attribution, the memory axis of the
//!   observability layer,
//! * [`calibrate`] — deterministic machine-speed microprobes recorded
//!   into perf artifacts so cross-run comparisons can normalize away
//!   container speed drift,
//! * [`histogram`] — a log-bucketed (HDR-style) fixed-size latency
//!   histogram with lock-free atomic recording, merge, and
//!   deterministic quantile extraction (replaces `hdrhistogram` for
//!   the service telemetry plane).

pub mod alloc;
pub mod bench;
pub mod calibrate;
pub mod counters;
pub mod digest;
pub mod histogram;
pub mod json;
pub mod prop;
pub mod rng;
pub mod schema;

pub use json::{Json, JsonParseError, ToJson};
pub use rng::Rng;
pub use schema::Schema;
