//! A minimal structural schema checker for [`Json`] documents.
//!
//! Versioned artifacts (`BENCH_*.json`, trace metrics) need a way to
//! assert "this file has the shape my reader expects" without pulling in
//! a JSON-Schema implementation. A [`Schema`] is a small declarative
//! description — object fields (required or optional), homogeneous
//! arrays, scalar kinds — and [`validate`] walks a document against it,
//! reporting every mismatch with its JSON path.
//!
//! ```
//! use aov_support::schema::{self, Schema};
//! use aov_support::Json;
//!
//! let schema = Schema::object([
//!     ("name", Schema::Str, true),
//!     ("runs", Schema::Int, true),
//!     ("note", Schema::Str, false),
//! ]);
//! let doc = Json::obj().field("name", "suite").field("runs", 3);
//! assert!(schema::validate(&doc, &schema).is_ok());
//!
//! let bad = Json::obj().field("runs", "three");
//! let errors = schema::validate(&bad, &schema).unwrap_err();
//! assert_eq!(errors.len(), 2); // missing $.name, wrong type at $.runs
//! ```

use crate::json::Json;

/// The expected shape of one JSON value.
#[derive(Debug, Clone)]
pub enum Schema {
    /// Any value passes.
    Any,
    Null,
    Bool,
    /// An integer ([`Json::Int`]).
    Int,
    /// Any number ([`Json::Int`] or [`Json::Float`]).
    Num,
    Str,
    /// An array whose every element matches the inner schema.
    Arr(Box<Schema>),
    /// An object with named fields. Unknown fields are allowed (schemas
    /// stay forward-compatible); required fields must be present.
    Obj(Vec<Field>),
    /// Either `null` or the inner schema (e.g. a nullable hit rate).
    Nullable(Box<Schema>),
}

/// One object field: name, shape, and whether it must be present.
#[derive(Debug, Clone)]
pub struct Field {
    pub name: String,
    pub schema: Schema,
    pub required: bool,
}

impl Schema {
    /// An object schema from `(name, schema, required)` triples.
    pub fn object<const N: usize>(fields: [(&str, Schema, bool); N]) -> Schema {
        Schema::Obj(
            fields
                .into_iter()
                .map(|(name, schema, required)| Field {
                    name: name.to_string(),
                    schema,
                    required,
                })
                .collect(),
        )
    }

    /// An array-of-`inner` schema.
    #[must_use]
    pub fn array(inner: Schema) -> Schema {
        Schema::Arr(Box::new(inner))
    }

    /// A nullable-`inner` schema.
    #[must_use]
    pub fn nullable(inner: Schema) -> Schema {
        Schema::Nullable(Box::new(inner))
    }
}

/// Checks `doc` against `schema`; collects every mismatch as
/// `"$<path>: <problem>"`.
///
/// # Errors
///
/// The non-empty list of mismatch descriptions.
pub fn validate(doc: &Json, schema: &Schema) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    walk(doc, schema, "$", &mut errors);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn kind(json: &Json) -> &'static str {
    match json {
        Json::Null => "null",
        Json::Bool(_) => "bool",
        Json::Int(_) => "int",
        Json::Float(_) => "float",
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    }
}

fn walk(doc: &Json, schema: &Schema, path: &str, errors: &mut Vec<String>) {
    let mismatch = |errors: &mut Vec<String>, want: &str| {
        errors.push(format!("{path}: expected {want}, got {}", kind(doc)));
    };
    match schema {
        Schema::Any => {}
        Schema::Null => {
            if !matches!(doc, Json::Null) {
                mismatch(errors, "null");
            }
        }
        Schema::Bool => {
            if !matches!(doc, Json::Bool(_)) {
                mismatch(errors, "bool");
            }
        }
        Schema::Int => {
            if !matches!(doc, Json::Int(_)) {
                mismatch(errors, "int");
            }
        }
        Schema::Num => {
            if !matches!(doc, Json::Int(_) | Json::Float(_)) {
                mismatch(errors, "number");
            }
        }
        Schema::Str => {
            if !matches!(doc, Json::Str(_)) {
                mismatch(errors, "string");
            }
        }
        Schema::Arr(inner) => match doc {
            Json::Arr(items) => {
                for (i, item) in items.iter().enumerate() {
                    walk(item, inner, &format!("{path}[{i}]"), errors);
                }
            }
            _ => mismatch(errors, "array"),
        },
        Schema::Obj(fields) => match doc {
            Json::Obj(_) => {
                for f in fields {
                    match doc.get(&f.name) {
                        Some(value) => {
                            walk(value, &f.schema, &format!("{path}.{}", f.name), errors);
                        }
                        None if f.required => {
                            errors.push(format!("{path}.{}: required field missing", f.name));
                        }
                        None => {}
                    }
                }
            }
            _ => mismatch(errors, "object"),
        },
        Schema::Nullable(inner) => {
            if !matches!(doc, Json::Null) {
                walk(doc, inner, path, errors);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suite_schema() -> Schema {
        Schema::object([
            ("name", Schema::Str, true),
            ("runs", Schema::Int, true),
            ("hit_rate", Schema::nullable(Schema::Num), false),
            (
                "stages",
                Schema::array(Schema::object([
                    ("name", Schema::Str, true),
                    ("micros", Schema::Num, true),
                ])),
                true,
            ),
        ])
    }

    fn stage(name: &str, micros: i64) -> Json {
        Json::obj().field("name", name).field("micros", micros)
    }

    #[test]
    fn valid_document_passes() {
        let doc = Json::obj()
            .field("name", "suite")
            .field("runs", 3)
            .field("hit_rate", Json::Null)
            .field("stages", vec![stage("aov", 12), stage("codegen", 1)])
            .field("extra", "ignored");
        assert_eq!(validate(&doc, &suite_schema()), Ok(()));
    }

    #[test]
    fn missing_required_and_wrong_types_report_paths() {
        let doc = Json::obj()
            .field("runs", "three")
            .field("stages", vec![Json::obj().field("micros", "slow")]);
        let errors = validate(&doc, &suite_schema()).unwrap_err();
        assert!(
            errors.iter().any(|e| e.starts_with("$.name:")),
            "{errors:?}"
        );
        assert!(
            errors.iter().any(|e| e.contains("$.runs: expected int")),
            "{errors:?}"
        );
        assert!(
            errors.iter().any(|e| e.contains("$.stages[0].name")),
            "{errors:?}"
        );
        assert!(
            errors
                .iter()
                .any(|e| e.contains("$.stages[0].micros: expected number")),
            "{errors:?}"
        );
    }

    #[test]
    fn nullable_accepts_value_and_null() {
        let s = Schema::nullable(Schema::Num);
        assert!(validate(&Json::Null, &s).is_ok());
        assert!(validate(&Json::Float(0.5), &s).is_ok());
        assert!(validate(&Json::Str("x".into()), &s).is_err());
    }

    #[test]
    fn num_accepts_both_int_and_float() {
        assert!(validate(&Json::Int(7), &Schema::Num).is_ok());
        assert!(validate(&Json::Float(7.5), &Schema::Num).is_ok());
        assert!(validate(&Json::Bool(true), &Schema::Num).is_err());
    }

    #[test]
    fn array_reports_every_bad_element() {
        let s = Schema::array(Schema::Int);
        let doc = Json::Arr(vec![Json::Int(1), Json::Str("x".into()), Json::Bool(true)]);
        let errors = validate(&doc, &s).unwrap_err();
        assert_eq!(errors.len(), 2);
        assert!(errors[0].contains("$[1]"));
        assert!(errors[1].contains("$[2]"));
    }
}
