//! A wall-clock micro-benchmark harness.
//!
//! Each benchmark warms up, picks a batch size targeting a fixed batch
//! duration (so per-iteration timer overhead is amortized for
//! nanosecond-scale bodies), then times a fixed number of batches and
//! reports per-iteration statistics. Used by the `aov-bench` bench
//! binaries (`cargo bench` with `harness = false`): positional CLI
//! arguments act as substring filters, `--list` lists names.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Timing parameters.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Minimum warmup per benchmark.
    pub warmup: Duration,
    /// Target duration of one measured batch.
    pub batch_target: Duration,
    /// Number of measured batches (samples).
    pub samples: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            warmup: Duration::from_millis(300),
            batch_target: Duration::from_millis(50),
            samples: 12,
        }
    }
}

/// Per-iteration statistics of one benchmark, in nanoseconds.
#[derive(Debug, Clone)]
pub struct BenchStats {
    pub name: String,
    /// Iterations per measured batch.
    pub batch_iters: u64,
    /// Batches measured.
    pub samples: usize,
    pub mean_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
    /// Sample standard deviation of the per-batch means.
    pub stddev_ns: f64,
}

impl BenchStats {
    fn format_ns(ns: f64) -> String {
        if ns >= 1e9 {
            format!("{:.3} s", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.3} ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.3} µs", ns / 1e3)
        } else {
            format!("{ns:.1} ns")
        }
    }

    /// One-line rendering: `name  mean ± stddev  [min, max]`.
    pub fn render(&self) -> String {
        format!(
            "{:<48} {:>12} ± {:<10} [{} .. {}]  ({} iters × {} samples)",
            self.name,
            Self::format_ns(self.mean_ns),
            Self::format_ns(self.stddev_ns),
            Self::format_ns(self.min_ns),
            Self::format_ns(self.max_ns),
            self.batch_iters,
            self.samples,
        )
    }
}

/// Collects and reports benchmarks. See the module docs for the CLI
/// contract.
pub struct Harness {
    config: BenchConfig,
    filters: Vec<String>,
    list_only: bool,
    results: Vec<BenchStats>,
    skipped: usize,
}

impl Harness {
    /// A harness configured from `std::env::args` (filters, `--list`);
    /// flags it does not know (e.g. `--bench`, passed by cargo) are
    /// ignored.
    pub fn from_args() -> Self {
        let mut filters = Vec::new();
        let mut list_only = false;
        for arg in std::env::args().skip(1) {
            if arg == "--list" {
                list_only = true;
            } else if !arg.starts_with('-') {
                filters.push(arg);
            }
        }
        Harness {
            config: BenchConfig::default(),
            filters,
            list_only,
            results: Vec::new(),
            skipped: 0,
        }
    }

    /// A harness with explicit parameters (no CLI parsing) — for tests.
    pub fn with_config(config: BenchConfig) -> Self {
        Harness {
            config,
            filters: Vec::new(),
            list_only: false,
            results: Vec::new(),
            skipped: 0,
        }
    }

    fn selected(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }

    /// Runs (or lists/skips) one benchmark. The closure's return value is
    /// passed through [`black_box`] so the optimizer cannot delete the
    /// measured work.
    pub fn bench<R>(&mut self, name: &str, mut body: impl FnMut() -> R) {
        if !self.selected(name) {
            self.skipped += 1;
            return;
        }
        if self.list_only {
            println!("{name}");
            return;
        }
        let stats = measure(name, &self.config, &mut body);
        println!("{}", stats.render());
        self.results.push(stats);
    }

    /// Results measured so far.
    pub fn results(&self) -> &[BenchStats] {
        &self.results
    }

    /// Prints the summary footer. Call at the end of `main`.
    pub fn finish(self) {
        if !self.list_only {
            println!(
                "\n{} benchmarks measured, {} filtered out",
                self.results.len(),
                self.skipped
            );
        }
    }
}

/// Measures one closure with the harness's warmup/batch protocol and
/// returns the raw statistics without printing. The [`Harness`] CLI
/// path and the [`crate::calibrate`] microprobes share this.
pub fn measure<R>(name: &str, config: &BenchConfig, body: &mut impl FnMut() -> R) -> BenchStats {
    // Warmup: run for at least `warmup`, counting iterations to estimate
    // the per-iteration cost.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < config.warmup || warm_iters == 0 {
        black_box(body());
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
    let batch_iters = ((config.batch_target.as_secs_f64() / per_iter).ceil() as u64).max(1);

    let mut batch_means = Vec::with_capacity(config.samples);
    for _ in 0..config.samples {
        let t = Instant::now();
        for _ in 0..batch_iters {
            black_box(body());
        }
        batch_means.push(t.elapsed().as_secs_f64() * 1e9 / batch_iters as f64);
    }
    let n = batch_means.len() as f64;
    let mean = batch_means.iter().sum::<f64>() / n;
    let var = if batch_means.len() > 1 {
        batch_means.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
    } else {
        0.0
    };
    BenchStats {
        name: name.to_string(),
        batch_iters,
        samples: batch_means.len(),
        mean_ns: mean,
        min_ns: batch_means.iter().copied().fold(f64::INFINITY, f64::min),
        max_ns: batch_means.iter().copied().fold(0.0, f64::max),
        stddev_ns: var.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> BenchConfig {
        BenchConfig {
            warmup: Duration::from_millis(5),
            batch_target: Duration::from_millis(2),
            samples: 4,
        }
    }

    #[test]
    fn measures_something_positive() {
        let mut h = Harness::with_config(quick_config());
        h.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        let r = &h.results()[0];
        assert!(r.mean_ns > 0.0);
        assert!(r.min_ns <= r.mean_ns && r.mean_ns <= r.max_ns);
        assert_eq!(r.samples, 4);
    }

    #[test]
    fn render_units() {
        assert_eq!(BenchStats::format_ns(12.3), "12.3 ns");
        assert_eq!(BenchStats::format_ns(12_300.0), "12.300 µs");
        assert_eq!(BenchStats::format_ns(12_300_000.0), "12.300 ms");
        assert_eq!(BenchStats::format_ns(2_500_000_000.0), "2.500 s");
    }
}
