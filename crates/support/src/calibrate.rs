//! Machine-speed calibration: a deterministic fingerprint of how fast
//! *this* machine runs fixed work, recorded alongside perf artifacts so
//! cross-artifact comparisons can tell a slower machine from a slower
//! program.
//!
//! The observatory's regression gate compares wall-clock numbers taken
//! days apart, often in shared containers whose effective CPU speed
//! drifts by tens of percent (PR 7 recorded the same binary measuring
//! 59.5 s one day and 80–86 s another, with bit-identical solver
//! counters). A [`Calibration`] is three microprobes — each a fixed
//! amount of work, timed with the [`crate::bench`] harness — chosen to
//! span the axes the solver stack actually exercises:
//!
//! * **cpu** — a pure integer mixing loop (SplitMix64-style rounds):
//!   raw ALU speed, no memory traffic.
//! * **alloc** — a burst of small short-lived heap allocations through
//!   the counting global allocator: allocator round-trip cost, the
//!   dominant cost of the exact kernel (runs are allocation-bound).
//! * **bigint** — schoolbook multi-limb multiplication with a freshly
//!   allocated result vector per product: the shape of small-`BigInt`
//!   arithmetic (carry chains + one short-lived allocation), without a
//!   dependency cycle on `aov-numeric`.
//!
//! Each probe reports the *minimum* per-iteration nanoseconds over
//! several measured batches — the most interruption-robust statistic —
//! so two calibrations of the same machine agree within a narrow band
//! while a container throttled to 70% shows every probe proportionally
//! slower. [`Calibration::speed_factor`] turns two measured
//! calibrations into a single normalization factor (geometric mean of
//! the per-probe ratios); artifacts upgraded from pre-calibration
//! schema versions carry [`Calibration::neutral`], which yields no
//! factor and lets consumers fall back to data-derived estimates.

use std::hint::black_box;
use std::time::Duration;

use crate::bench::{measure, BenchConfig};
use crate::json::{Json, ToJson};

/// The three probe timings, per-iteration nanoseconds. All zero means
/// "neutral": no calibration was measured (legacy artifacts).
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Integer-mixing probe, ns/iteration.
    pub cpu_ns: f64,
    /// Allocation-churn probe, ns/iteration.
    pub alloc_ns: f64,
    /// Small multi-limb multiply probe, ns/iteration.
    pub bigint_ns: f64,
}

/// Rounds of the integer-mixing loop per cpu-probe iteration.
const CPU_ROUNDS: u64 = 4096;
/// Short-lived allocations per alloc-probe iteration.
const ALLOC_BURSTS: usize = 64;
/// Multi-limb products per bigint-probe iteration.
const BIGINT_PRODUCTS: u64 = 32;

/// Fixed-work integer mixing (SplitMix64 finalizer rounds).
fn cpu_probe() -> u64 {
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    for i in 0..CPU_ROUNDS {
        x = x.wrapping_add(i).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 31;
    }
    x
}

/// A burst of small short-lived heap allocations of varied sizes.
fn alloc_probe() -> u64 {
    let mut acc = 0u64;
    for k in 0..ALLOC_BURSTS {
        let cap = 8 + (k & 31) * 4;
        let mut v: Vec<u64> = Vec::with_capacity(cap);
        v.push(k as u64);
        acc = acc.wrapping_add(black_box(&v).capacity() as u64 ^ v[0]);
    }
    acc
}

/// Schoolbook 3×3-limb multiplies, one fresh result vector per product
/// (the allocation + carry-chain shape of small-`BigInt` arithmetic).
fn bigint_probe() -> u64 {
    let a = [
        0xfeed_face_cafe_f00du64,
        0x1234_5678_9abc_def0,
        0x0f1e_2d3c_4b5a_6978,
    ];
    let mut b = [3u64, 5, 7];
    let mut acc = 0u64;
    for i in 0..BIGINT_PRODUCTS {
        b[0] = b[0].wrapping_add(i);
        // A fresh heap vector per product is the point of the probe:
        // small-BigInt products allocate their result limbs.
        #[allow(clippy::useless_vec)]
        let mut out = vec![0u64; 6];
        for (ai, &x) in a.iter().enumerate() {
            let mut carry: u128 = 0;
            for (bi, &y) in b.iter().enumerate() {
                let t = u128::from(out[ai + bi]) + u128::from(x) * u128::from(y) + carry;
                out[ai + bi] = t as u64;
                carry = t >> 64;
            }
            out[ai + b.len()] = out[ai + b.len()].wrapping_add(carry as u64);
        }
        acc = acc.wrapping_add(out[5] ^ out[0]);
    }
    acc
}

/// Probe timing parameters: quick enough to run at every
/// artifact-record time (~¼ s total), long enough that the minimum
/// over batches is stable.
fn probe_config() -> BenchConfig {
    BenchConfig {
        warmup: Duration::from_millis(20),
        batch_target: Duration::from_millis(8),
        samples: 7,
    }
}

impl Calibration {
    /// Runs the three microprobes and records their minimum
    /// per-iteration times. Takes roughly a quarter second.
    #[must_use]
    pub fn measure() -> Calibration {
        let cfg = probe_config();
        Calibration {
            cpu_ns: measure("calibrate.cpu", &cfg, &mut cpu_probe).min_ns,
            alloc_ns: measure("calibrate.alloc", &cfg, &mut alloc_probe).min_ns,
            bigint_ns: measure("calibrate.bigint", &cfg, &mut bigint_probe).min_ns,
        }
    }

    /// The no-measurement placeholder attached to artifacts upgraded
    /// from pre-calibration schema versions.
    #[must_use]
    pub fn neutral() -> Calibration {
        Calibration {
            cpu_ns: 0.0,
            alloc_ns: 0.0,
            bigint_ns: 0.0,
        }
    }

    /// Whether this calibration holds real probe timings.
    #[must_use]
    pub fn is_measured(&self) -> bool {
        self.cpu_ns > 0.0 && self.alloc_ns > 0.0 && self.bigint_ns > 0.0
    }

    /// Scalar machine-slowness score: the geometric mean of the three
    /// probe times (ns). Higher = slower machine. Zero when neutral.
    #[must_use]
    pub fn score(&self) -> f64 {
        if !self.is_measured() {
            return 0.0;
        }
        (self.cpu_ns * self.alloc_ns * self.bigint_ns).cbrt()
    }

    /// How much slower `current`'s machine ran than `baseline`'s:
    /// the geometric mean of per-probe ratios. Dividing a wall-clock
    /// measurement taken on `current`'s machine by this factor expresses
    /// it in `baseline`-machine time. `None` unless both sides are
    /// measured — consumers then fall back to estimation or to raw
    /// comparison.
    #[must_use]
    pub fn speed_factor(baseline: &Calibration, current: &Calibration) -> Option<f64> {
        if !baseline.is_measured() || !current.is_measured() {
            return None;
        }
        let ratio = (current.cpu_ns / baseline.cpu_ns)
            * (current.alloc_ns / baseline.alloc_ns)
            * (current.bigint_ns / baseline.bigint_ns);
        Some(ratio.cbrt())
    }

    /// Parses a calibration block written by [`ToJson`]; anything
    /// malformed, null, or absent reads as [`Calibration::neutral`].
    #[must_use]
    pub fn from_json(doc: Option<&Json>) -> Calibration {
        let Some(doc) = doc else {
            return Calibration::neutral();
        };
        let num = |key: &str| match doc.get(key) {
            Some(Json::Float(f)) if *f > 0.0 => *f,
            Some(Json::Int(i)) if *i > 0 => *i as f64,
            _ => 0.0,
        };
        let cal = Calibration {
            cpu_ns: num("cpu_ns"),
            alloc_ns: num("alloc_ns"),
            bigint_ns: num("bigint_ns"),
        };
        if cal.is_measured() {
            cal
        } else {
            Calibration::neutral()
        }
    }
}

impl ToJson for Calibration {
    fn to_json(&self) -> Json {
        let field = |v: f64| {
            if v > 0.0 {
                Json::Float(v)
            } else {
                Json::Null
            }
        };
        Json::obj()
            .field("measured", self.is_measured())
            .field("cpu_ns", field(self.cpu_ns))
            .field("alloc_ns", field(self.alloc_ns))
            .field("bigint_ns", field(self.bigint_ns))
            .field("score", field(self.score()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neutral_is_not_measured_and_scores_zero() {
        let n = Calibration::neutral();
        assert!(!n.is_measured());
        assert_eq!(n.score(), 0.0);
        assert_eq!(Calibration::speed_factor(&n, &n), None);
    }

    #[test]
    fn measured_calibration_round_trips_through_json() {
        let c = Calibration {
            cpu_ns: 1200.0,
            alloc_ns: 900.5,
            bigint_ns: 2100.0,
        };
        let doc = c.to_json();
        assert_eq!(doc.get("measured"), Some(&Json::Bool(true)));
        let back = Calibration::from_json(Some(&doc));
        assert_eq!(back, c);
        // Neutral round-trips to neutral (nulls, measured=false).
        let n = Calibration::neutral().to_json();
        assert_eq!(n.get("measured"), Some(&Json::Bool(false)));
        assert_eq!(n.get("cpu_ns"), Some(&Json::Null));
        assert!(!Calibration::from_json(Some(&n)).is_measured());
        // Absent block reads as neutral.
        assert!(!Calibration::from_json(None).is_measured());
    }

    #[test]
    fn speed_factor_requires_both_sides_measured() {
        let m = Calibration {
            cpu_ns: 1000.0,
            alloc_ns: 1000.0,
            bigint_ns: 1000.0,
        };
        assert_eq!(Calibration::speed_factor(&m, &Calibration::neutral()), None);
        assert_eq!(Calibration::speed_factor(&Calibration::neutral(), &m), None);
        // A uniformly 1.5× slower machine reads as factor 1.5.
        let slower = Calibration {
            cpu_ns: 1500.0,
            alloc_ns: 1500.0,
            bigint_ns: 1500.0,
        };
        let f = Calibration::speed_factor(&m, &slower).unwrap();
        assert!((f - 1.5).abs() < 1e-9, "{f}");
    }

    /// The determinism contract the comparator depends on: two
    /// calibrations of the same machine, back to back, agree within a
    /// pinned band. The band is wide (2×) because CI containers
    /// genuinely jitter; real cross-day drift episodes measured ~1.4×
    /// on every probe at once, which the *ratio* of two calibrations
    /// taken days apart would capture — this test pins the same-moment
    /// noise floor well inside that signal.
    #[test]
    fn consecutive_calibrations_agree_within_band() {
        let a = Calibration::measure();
        let b = Calibration::measure();
        assert!(a.is_measured() && b.is_measured());
        for (name, x, y) in [
            ("cpu", a.cpu_ns, b.cpu_ns),
            ("alloc", a.alloc_ns, b.alloc_ns),
            ("bigint", a.bigint_ns, b.bigint_ns),
        ] {
            let ratio = x / y;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "{name} probe unstable: {x:.1} vs {y:.1} ns (ratio {ratio:.2})"
            );
        }
        let f = Calibration::speed_factor(&a, &b).unwrap();
        assert!((0.5..=2.0).contains(&f), "combined factor {f:.2}");
    }
}
