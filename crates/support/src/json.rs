//! A minimal JSON value and writer — just enough to emit reports.
//!
//! Object keys keep insertion order (reports read better and diffs stay
//! stable). Non-finite floats serialize as `null`, mirroring what
//! `serde_json` does by default.

use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds (or replaces) a field; builder-style, so report construction
    /// reads top to bottom.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => {
                let value = value.into();
                if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    fields.push((key.to_string(), value));
                }
                self
            }
            _ => panic!("field() on non-object Json"),
        }
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Compact rendering (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    // `{}` prints the shortest representation that round-trips;
                    // force a decimal point so the value reads back as a float.
                    let s = format!("{x}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, level, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, level + 1);
            }),
            Json::Obj(fields) => write_seq(out, indent, level, '{', '}', fields.len(), |out, i| {
                let (k, v) = &fields[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                v.write(out, indent, level + 1);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (level + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * level));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

/// Conversion into a [`Json`] value; implement for report types.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}
impl From<i32> for Json {
    fn from(n: i32) -> Json {
        Json::Int(n.into())
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Int(i64::try_from(n).expect("usize fits i64"))
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Int(i64::try_from(n).expect("u64 value fits i64"))
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_shapes() {
        let j = Json::obj()
            .field("name", "aov")
            .field("n", 3i64)
            .field("ok", true)
            .field("xs", Json::Arr(vec![Json::Int(1), Json::Null]));
        assert_eq!(
            j.to_compact(),
            r#"{"name":"aov","n":3,"ok":true,"xs":[1,null]}"#
        );
    }

    #[test]
    fn pretty_indents() {
        let j = Json::obj().field("a", Json::Arr(vec![Json::Int(1), Json::Int(2)]));
        assert_eq!(j.to_pretty(), "{\n  \"a\": [\n    1,\n    2\n  ]\n}\n");
    }

    #[test]
    fn escaping() {
        let j = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(j.to_compact(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn floats() {
        assert_eq!(Json::Float(1.5).to_compact(), "1.5");
        assert_eq!(Json::Float(2.0).to_compact(), "2.0");
        assert_eq!(Json::Float(f64::NAN).to_compact(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn field_replaces_and_get_reads() {
        let j = Json::obj().field("k", 1i64).field("k", 2i64);
        assert_eq!(j.get("k"), Some(&Json::Int(2)));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::obj().to_compact(), "{}");
        assert_eq!(Json::Arr(vec![]).to_pretty(), "[]\n");
    }
}
