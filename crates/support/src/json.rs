//! A minimal JSON value, writer and parser — just enough to emit and
//! read back reports.
//!
//! Object keys keep insertion order (reports read better and diffs stay
//! stable). Non-finite floats serialize as `null`, mirroring what
//! `serde_json` does by default. [`Json::parse`] accepts anything the
//! writer emits (round-trip) plus standard JSON from other producers.

use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds (or replaces) a field; builder-style, so report construction
    /// reads top to bottom.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => {
                let value = value.into();
                if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    fields.push((key.to_string(), value));
                }
                self
            }
            _ => panic!("field() on non-object Json"),
        }
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Compact rendering (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    /// Parses a JSON document (rejecting trailing non-whitespace).
    ///
    /// Integers that fit `i64` parse as [`Json::Int`]; other numbers
    /// parse as [`Json::Float`]. Duplicate object keys keep the last
    /// value, matching [`Json::field`].
    ///
    /// # Errors
    ///
    /// [`JsonParseError`] with a byte offset and message on malformed
    /// input.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after JSON value"));
        }
        Ok(value)
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    // `{}` prints the shortest representation that round-trips;
                    // force a decimal point so the value reads back as a float.
                    let s = format!("{x}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, level, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, level + 1);
            }),
            Json::Obj(fields) => write_seq(out, indent, level, '{', '}', fields.len(), |out, i| {
                let (k, v) = &fields[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                v.write(out, indent, level + 1);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (level + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * level));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

/// Error from [`Json::parse`]: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut obj = Json::obj();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(obj);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            obj = obj.field(&key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(obj);
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs (for completeness; the
                            // writer never emits them).
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid unicode escape"))?);
                            continue; // hex4 already advanced
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a' + 10),
                Some(c @ b'A'..=b'F') => u32::from(c - b'A' + 10),
                _ => return Err(self.error("expected four hex digits")),
            };
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.error("expected digits"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.error("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.error("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

/// Conversion into a [`Json`] value; implement for report types.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}
impl From<i32> for Json {
    fn from(n: i32) -> Json {
        Json::Int(n.into())
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Int(i64::try_from(n).expect("usize fits i64"))
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Int(i64::try_from(n).expect("u64 value fits i64"))
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_shapes() {
        let j = Json::obj()
            .field("name", "aov")
            .field("n", 3i64)
            .field("ok", true)
            .field("xs", Json::Arr(vec![Json::Int(1), Json::Null]));
        assert_eq!(
            j.to_compact(),
            r#"{"name":"aov","n":3,"ok":true,"xs":[1,null]}"#
        );
    }

    #[test]
    fn pretty_indents() {
        let j = Json::obj().field("a", Json::Arr(vec![Json::Int(1), Json::Int(2)]));
        assert_eq!(j.to_pretty(), "{\n  \"a\": [\n    1,\n    2\n  ]\n}\n");
    }

    #[test]
    fn escaping() {
        let j = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(j.to_compact(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn floats() {
        assert_eq!(Json::Float(1.5).to_compact(), "1.5");
        assert_eq!(Json::Float(2.0).to_compact(), "2.0");
        assert_eq!(Json::Float(f64::NAN).to_compact(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn field_replaces_and_get_reads() {
        let j = Json::obj().field("k", 1i64).field("k", 2i64);
        assert_eq!(j.get("k"), Some(&Json::Int(2)));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::obj().to_compact(), "{}");
        assert_eq!(Json::Arr(vec![]).to_pretty(), "[]\n");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let j = Json::obj()
            .field("name", "aov \"quoted\"\n")
            .field("n", -42i64)
            .field("x", 2.5f64)
            .field("big", 2.0e19f64)
            .field("ok", true)
            .field("nothing", Json::Null)
            .field(
                "xs",
                Json::Arr(vec![Json::Int(1), Json::Arr(vec![]), Json::obj()]),
            );
        assert_eq!(Json::parse(&j.to_compact()), Ok(j.clone()));
        assert_eq!(Json::parse(&j.to_pretty()), Ok(j));
    }

    #[test]
    fn parse_numbers() {
        assert_eq!(Json::parse("0"), Ok(Json::Int(0)));
        assert_eq!(Json::parse("-7"), Ok(Json::Int(-7)));
        assert_eq!(Json::parse("1.5"), Ok(Json::Float(1.5)));
        assert_eq!(Json::parse("1e3"), Ok(Json::Float(1000.0)));
        assert_eq!(Json::parse("-2.5E-1"), Ok(Json::Float(-0.25)));
        // i64::MAX stays an Int; one past it falls back to Float.
        assert_eq!(Json::parse("9223372036854775807"), Ok(Json::Int(i64::MAX)));
        assert!(matches!(
            Json::parse("9223372036854775808"),
            Ok(Json::Float(_))
        ));
    }

    #[test]
    fn parse_string_escapes() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\nd\u0001\u00e9""#),
            Ok(Json::Str("a\"b\\c\nd\u{1}é".into()))
        );
        // Surrogate pair: U+1F600.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#),
            Ok(Json::Str("\u{1F600}".into()))
        );
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"open",
            "{\"k\" 1}",
            "1 2",
            "[1]]",
            "nul",
            "01x",
            "-",
            "\"\\q\"",
            "{\"k\":}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_duplicate_keys_keep_last() {
        assert_eq!(
            Json::parse(r#"{"k":1,"k":2}"#),
            Ok(Json::obj().field("k", 2i64))
        );
    }

    #[test]
    fn parse_whitespace_tolerant() {
        let j = Json::parse(" \t\r\n{ \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(
            j,
            Json::obj().field("a", Json::Arr(vec![Json::Int(1), Json::Int(2)]))
        );
    }
}
