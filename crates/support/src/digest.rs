//! Tiny content digests for artifact fingerprinting.
//!
//! The benchmark observatory stores a digest of every figure's rendered
//! text so a perf baseline also catches *correctness* drift: if a figure
//! starts printing different numbers, the digest mismatch fails the
//! comparison even when timings look fine. FNV-1a is enough for that —
//! the digests guard against accidental drift, not adversaries.

/// 64-bit FNV-1a hash of `bytes`.
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// [`fnv1a_64`] rendered as a fixed-width hex string (the form stored in
/// `BENCH_*.json`).
#[must_use]
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a_64(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hex_is_fixed_width() {
        assert_eq!(fnv1a_hex(b""), "cbf29ce484222325");
        assert_eq!(fnv1a_hex(b"").len(), 16);
    }

    #[test]
    fn distinct_inputs_differ() {
        assert_ne!(fnv1a_64(b"fig05 v=(1,2)"), fnv1a_64(b"fig05 v=(0,3)"));
    }
}
