//! A process-global registry of named `u64` counters.
//!
//! Hot paths (simplex pivots, branch-and-bound nodes, Fourier–Motzkin
//! eliminations) bump counters through a cached `&'static AtomicU64`, so
//! the per-event cost is one relaxed atomic increment; the registry lock
//! is only taken on first lookup and when snapshotting.
//!
//! Counters are cumulative across threads — parallel fan-out sums into
//! the same cells, so totals are deterministic even though interleaving
//! is not. `aov-engine` diffs [`snapshot`]s around each pipeline stage to
//! attribute work to stages.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

fn registry() -> &'static Mutex<Vec<(String, &'static AtomicU64)>> {
    static REGISTRY: OnceLock<Mutex<Vec<(String, &'static AtomicU64)>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// The counter named `name`, registering it (at zero) on first use.
/// The returned reference is `'static`: cache it in hot paths (see
/// [`static_counter!`](crate::static_counter)).
pub fn counter(name: &str) -> &'static AtomicU64 {
    let mut reg = registry().lock().expect("counter registry poisoned");
    if let Some((_, c)) = reg.iter().find(|(n, _)| n == name) {
        return c;
    }
    let cell: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
    reg.push((name.to_string(), cell));
    cell
}

/// Convenience: `counter(name) += delta` (relaxed).
pub fn add(name: &str, delta: u64) {
    counter(name).fetch_add(delta, Ordering::Relaxed);
}

/// Raises `counter(name)` to at least `value` (relaxed `fetch_max`).
///
/// A *max counter* is monotone like an additive counter, so it flows
/// through [`snapshot`]/[`delta`] unchanged — but a per-stage delta
/// reads as "how much the high-water mark rose during the stage", and
/// the running maximum at the end of stage *k* is the cumulative sum
/// of the first *k* deltas. Used for quantities like the largest
/// coefficient bit-width seen in simplex.
pub fn record_max(name: &str, value: u64) {
    counter(name).fetch_max(value, Ordering::Relaxed);
}

/// Current values of all registered counters, sorted by name.
pub fn snapshot() -> Vec<(String, u64)> {
    let reg = registry().lock().expect("counter registry poisoned");
    let mut out: Vec<(String, u64)> = reg
        .iter()
        .map(|(n, c)| (n.clone(), c.load(Ordering::Relaxed)))
        .collect();
    out.sort();
    out
}

/// Difference `after - before` per counter, dropping zero deltas.
/// Counters appearing only in `after` count from zero.
pub fn delta(before: &[(String, u64)], after: &[(String, u64)]) -> Vec<(String, u64)> {
    after
        .iter()
        .filter_map(|(name, v)| {
            let base = before
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |(_, b)| *b);
            let d = v.saturating_sub(base);
            (d > 0).then(|| (name.clone(), d))
        })
        .collect()
}

/// Resets every registered counter to zero. Intended for process-level
/// tools (the `aov` CLI); concurrent increments during a reset are not
/// atomically accounted.
pub fn reset() {
    let reg = registry().lock().expect("counter registry poisoned");
    for (_, c) in reg.iter() {
        c.store(0, Ordering::Relaxed);
    }
}

/// Caches a counter lookup in a local `static` so hot loops pay only the
/// atomic increment:
///
/// ```
/// use std::sync::atomic::Ordering;
/// for _ in 0..3 {
///     aov_support::static_counter!("example.iterations").fetch_add(1, Ordering::Relaxed);
/// }
/// let snap = aov_support::counters::snapshot();
/// assert!(snap.iter().any(|(n, v)| n == "example.iterations" && *v >= 3));
/// ```
#[macro_export]
macro_rules! static_counter {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<&'static ::std::sync::atomic::AtomicU64> =
            ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::counters::counter($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_add_snapshot_delta() {
        let before = snapshot();
        add("test.counters.alpha", 3);
        add("test.counters.alpha", 2);
        add("test.counters.beta", 1);
        let after = snapshot();
        let d = delta(&before, &after);
        assert!(d.contains(&("test.counters.alpha".to_string(), 5)));
        assert!(d.contains(&("test.counters.beta".to_string(), 1)));
    }

    #[test]
    fn same_name_same_cell() {
        let a = counter("test.counters.same") as *const _;
        let b = counter("test.counters.same") as *const _;
        assert_eq!(a, b);
    }

    #[test]
    fn static_counter_macro_counts() {
        let before = snapshot();
        for _ in 0..4 {
            crate::static_counter!("test.counters.macro").fetch_add(1, Ordering::Relaxed);
        }
        let after = snapshot();
        let d = delta(&before, &after);
        assert!(d.contains(&("test.counters.macro".to_string(), 4)));
    }

    #[test]
    fn concurrent_increments_sum() {
        let before = counter("test.counters.mt").load(Ordering::Relaxed);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        add("test.counters.mt", 1);
                    }
                });
            }
        });
        let after = counter("test.counters.mt").load(Ordering::Relaxed);
        assert_eq!(after - before, 4000);
    }
}
