//! A counting `#[global_allocator]` with span-scoped attribution.
//!
//! The wrapper delegates every call to [`std::alloc::System`] and keeps
//! two ledgers:
//!
//! * **global** — allocation/free counts, cumulative bytes, live bytes
//!   and a high-water mark for the whole process, always on;
//! * **scoped** — the same quantities charged to the innermost open
//!   [`AllocScope`] on the allocating thread, so `aov-trace` spans (and
//!   engine pipeline stages) can report *their own* heap traffic the
//!   way the flame table reports self-time.
//!
//! # Hot-path contract
//!
//! The allocator itself must never allocate, lock, or run lazy TLS
//! initializers, so the only thread-local it touches is one
//! const-initialised all-`Cell` struct (no destructor, no lazy init).
//! The global ledger is **batched**: an allocation with no open scope
//! is two plain `Cell` increments on the thread's local ledger plus a
//! flush check; the local tallies drain into the shared atomics every
//! [`FLUSH_EVERY`] events (or immediately for allocations of
//! [`FLUSH_SIZE`] bytes and up, so big spikes hit the high-water mark
//! promptly). That keeps the per-allocation cost at the nanosecond
//! floor — shared `fetch_add`s per allocation would cost more than the
//! small allocations they count. The price is staleness: another
//! thread's last `< FLUSH_EVERY` events may not be visible in
//! [`stats`] yet. [`stats`] always flushes the *calling* thread first,
//! and the engine's fan-outs flush each worker on exit (via
//! `aov_trace::adopt` guard drop), so stage-boundary readings in the
//! pipeline are exact.
//!
//! The high-water mark is maintained at flush points with a racy
//! load-compare-store rather than a CAS loop: it may come out low by
//! at most one flush window (bounded by `FLUSH_EVERY` small
//! allocations or one sub-`FLUSH_SIZE` allocation), which is an
//! accepted trade for not paying shared-line traffic on every
//! allocation (the same trade `flame` makes with sampled percentiles).
//!
//! # Scoping rules
//!
//! Scopes nest per thread: allocations are charged to the **innermost**
//! scope only (self-bytes semantics — parents do not see children's
//! traffic, mirroring `self_ns` in the flame table). A scope can be
//! handed across threads with [`AllocScope::handle`] +
//! [`adopt`] — the worker's allocations then charge the same cells, so
//! a scoped fan-out attributes its workers' traffic to the span that
//! spawned them. Frees are charged to the scope open on the *freeing*
//! thread, so `net`/`peak` are exact only when memory dies where it was
//! born; for stage-grained scopes that is near enough, and the
//! cumulative `allocs`/`bytes` columns are exact regardless.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Global ledger
// ---------------------------------------------------------------------------

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
static FREED_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicI64 = AtomicI64::new(0);
static MAX_BITS: AtomicU64 = AtomicU64::new(0);

/// Master switch for the whole counting layer. On by default (so
/// library users and tests see exact numbers without ceremony); the
/// `aov` CLI disarms it for plain runs where nothing consumes the
/// numbers — on allocation-bound workloads even nanosecond-scale
/// per-event accounting is a few percent of wall time — and the
/// overhead suite toggles it to measure in situ. The
/// `#[global_allocator]` itself cannot be swapped at runtime, but with
/// the flag off the wrapper is one relaxed load and a predicted branch
/// away from raw `System`.
static COUNTING: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(true);

/// Enables or disables all allocation accounting (global ledger, scope
/// attribution and [`record_bits`]). Intended for overhead measurement;
/// ledgers freeze at their current values while disabled.
pub fn set_counting(on: bool) {
    COUNTING.store(on, Ordering::Relaxed);
}

/// Whether allocation accounting is currently enabled.
#[must_use]
pub fn counting() -> bool {
    COUNTING.load(Ordering::Relaxed)
}

/// The thread-local ledger drains into the global atomics every this
/// many events on the thread (power of two: the flush check is one
/// mask). 4096 events of staleness is invisible at stage granularity
/// and keeps the hot path free of shared-line traffic.
const FLUSH_EVERY: u64 = 4096;

/// Allocations at least this large flush immediately, so a big spike
/// reaches the global high-water mark without waiting out the window.
const FLUSH_SIZE: usize = 64 * 1024;

/// Process-wide allocator statistics at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Allocations since process start (`alloc` + `realloc` calls).
    pub allocs: u64,
    /// Frees since process start.
    pub frees: u64,
    /// Cumulative bytes requested.
    pub bytes: u64,
    /// Cumulative bytes returned.
    pub freed_bytes: u64,
    /// Bytes currently live (`bytes - freed_bytes`).
    pub live: i64,
    /// High-water mark of `live` since start (or the last
    /// [`reset_peak`]). Racy-max: may read a few bytes low under
    /// contention.
    pub peak: i64,
    /// Largest bit-width reported through [`record_bits`].
    pub max_bits: u64,
}

/// Snapshot of the global ledger. Flushes the calling thread's local
/// tallies first, so a single-threaded measure-around-a-region pattern
/// is exact; other live threads may still hold `< FLUSH_EVERY`
/// unflushed events each (see the module docs).
#[must_use]
pub fn stats() -> AllocStats {
    flush_local();
    let bytes = BYTES.load(Ordering::Relaxed);
    let freed = FREED_BYTES.load(Ordering::Relaxed);
    AllocStats {
        allocs: ALLOCS.load(Ordering::Relaxed),
        frees: FREES.load(Ordering::Relaxed),
        bytes,
        freed_bytes: freed,
        live: bytes as i64 - freed as i64,
        peak: PEAK.load(Ordering::Relaxed),
        max_bits: MAX_BITS.load(Ordering::Relaxed),
    }
}

/// Lowers the global high-water mark to the current live size, so a
/// benchmark can measure its own peak instead of inheriting warmup's.
pub fn reset_peak() {
    flush_local();
    let live = BYTES.load(Ordering::Relaxed) as i64 - FREED_BYTES.load(Ordering::Relaxed) as i64;
    PEAK.store(live, Ordering::Relaxed);
}

#[inline]
fn raise_racy(cell: &AtomicI64, candidate: i64) {
    if candidate > cell.load(Ordering::Relaxed) {
        cell.store(candidate, Ordering::Relaxed);
    }
}

#[inline]
fn raise_racy_u64(cell: &AtomicU64, candidate: u64) {
    if candidate > cell.load(Ordering::Relaxed) {
        cell.store(candidate, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Scoped ledger
// ---------------------------------------------------------------------------

/// The atomic cells one scope charges. Shared via `Arc` between the
/// owning guard, cross-thread adopters, and readers.
#[derive(Debug, Default)]
struct ScopeCell {
    allocs: AtomicU64,
    bytes: AtomicU64,
    frees: AtomicU64,
    freed_bytes: AtomicU64,
    /// Live bytes as seen by this scope (allocs minus frees charged
    /// here); can go negative when memory born elsewhere dies here.
    net: AtomicI64,
    /// Racy-max of `net`.
    peak: AtomicI64,
    max_bits: AtomicU64,
}

/// What one scope has been charged so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScopeStats {
    pub allocs: u64,
    pub bytes: u64,
    pub frees: u64,
    pub freed_bytes: u64,
    /// Net live bytes charged to the scope (may be negative — see the
    /// module docs on where frees are charged).
    pub net: i64,
    /// High-water mark of `net`, clamped at zero.
    pub peak: i64,
    /// Largest bit-width reported through [`record_bits`] while the
    /// scope was innermost.
    pub max_bits: u64,
}

impl ScopeCell {
    fn stats(&self) -> ScopeStats {
        ScopeStats {
            allocs: self.allocs.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
            freed_bytes: self.freed_bytes.load(Ordering::Relaxed),
            net: self.net.load(Ordering::Relaxed),
            peak: self.peak.load(Ordering::Relaxed).max(0),
            max_bits: self.max_bits.load(Ordering::Relaxed),
        }
    }
}

/// The per-thread ledger the allocator hot path touches: the innermost
/// scope pointer plus the batched tallies. All `Cell`s, const-init, no
/// destructor — reading it inside `alloc` is reentrancy-safe.
struct LocalLedger {
    /// Innermost scope on this thread; the pointee is kept alive by the
    /// guard that installed it.
    top: Cell<*const ScopeCell>,
    allocs: Cell<u64>,
    bytes: Cell<u64>,
    frees: Cell<u64>,
    freed_bytes: Cell<u64>,
}

thread_local! {
    static LOCAL: LocalLedger = const {
        LocalLedger {
            top: Cell::new(std::ptr::null()),
            allocs: Cell::new(0),
            bytes: Cell::new(0),
            frees: Cell::new(0),
            freed_bytes: Cell::new(0),
        }
    };

    /// Shadow stack of handles mirroring `LOCAL.top`, maintained only
    /// by the guards (never touched from inside the allocator), so
    /// [`current_handle`] can recover an owning reference.
    static SHADOW: RefCell<Vec<ScopeHandle>> = const { RefCell::new(Vec::new()) };
}

/// Drains this thread's batched tallies into the global atomics and
/// refreshes the high-water mark. Called automatically by [`stats`],
/// [`reset_peak`], the flush conditions in the hot path, and fan-out
/// guard drops (`aov_trace::adopt`); harmless to call at any time.
pub fn flush_local() {
    let _ = LOCAL.try_with(flush_cells);
}

#[cold]
#[inline(never)]
fn flush_cells(l: &LocalLedger) {
    let allocs = l.allocs.take();
    let frees = l.frees.take();
    if allocs == 0 && frees == 0 {
        return;
    }
    let bytes_delta = l.bytes.take();
    let freed_delta = l.freed_bytes.take();
    ALLOCS.fetch_add(allocs, Ordering::Relaxed);
    FREES.fetch_add(frees, Ordering::Relaxed);
    let bytes = BYTES.fetch_add(bytes_delta, Ordering::Relaxed) + bytes_delta;
    let freed = FREED_BYTES.fetch_add(freed_delta, Ordering::Relaxed) + freed_delta;
    raise_racy(&PEAK, bytes as i64 - freed as i64);
}

/// A cloneable, sendable reference to a scope's cells — capture with
/// [`current_handle`] or [`AllocScope::handle`] before a fan-out, then
/// [`adopt`] inside each worker.
#[derive(Debug, Clone)]
pub struct ScopeHandle {
    cell: Arc<ScopeCell>,
}

impl ScopeHandle {
    /// The scope's charges so far (live — the scope may still be open).
    #[must_use]
    pub fn stats(&self) -> ScopeStats {
        self.cell.stats()
    }
}

/// RAII guard of one allocation scope on the current thread. Holds the
/// previous innermost pointer (restored on drop), so guards must drop
/// in LIFO order — guaranteed by scoping since the guard is `!Send`.
#[derive(Debug)]
pub struct AllocScope {
    cell: Arc<ScopeCell>,
    prev: *const ScopeCell,
}

impl AllocScope {
    /// A handle for charging this scope from other threads.
    #[must_use]
    pub fn handle(&self) -> ScopeHandle {
        ScopeHandle {
            cell: Arc::clone(&self.cell),
        }
    }

    /// The scope's charges so far.
    #[must_use]
    pub fn stats(&self) -> ScopeStats {
        self.cell.stats()
    }
}

fn install(cell: Arc<ScopeCell>) -> AllocScope {
    let handle = ScopeHandle {
        cell: Arc::clone(&cell),
    };
    // Push the handle (may allocate — `top` not yet repointed, so the
    // allocation charges the enclosing scope, which is correct: guard
    // bookkeeping is the *caller's* traffic, not the new scope's).
    SHADOW.with(|s| s.borrow_mut().push(handle));
    let prev = LOCAL.with(|l| l.top.replace(Arc::as_ptr(&cell)));
    AllocScope { cell, prev }
}

/// Opens a fresh scope; allocations on this thread charge it until it
/// drops (or an inner scope opens).
#[must_use]
pub fn scope() -> AllocScope {
    install(Arc::new(ScopeCell::default()))
}

/// Re-opens the scope behind `handle` on this thread, so a fan-out
/// worker's allocations charge the scope of the span that spawned it.
#[must_use]
pub fn adopt(handle: &ScopeHandle) -> AllocScope {
    install(Arc::clone(&handle.cell))
}

/// The innermost open scope on this thread, if any.
#[must_use]
pub fn current_handle() -> Option<ScopeHandle> {
    SHADOW.with(|s| s.borrow().last().cloned())
}

impl Drop for AllocScope {
    fn drop(&mut self) {
        LOCAL.with(|l| l.top.set(self.prev));
        SHADOW.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// RAII guard suspending scope attribution on this thread (the global
/// ledger keeps counting). Restores the previous innermost scope on
/// drop. `!Send` via the raw pointer, so it cannot outlive its thread's
/// scope stack.
#[derive(Debug)]
pub struct ExemptGuard {
    prev: *const ScopeCell,
}

/// Suspends scope attribution while the guard lives. Telemetry
/// machinery uses this around its own buffer maintenance (e.g. the
/// trace sink growing its record vector) so bookkeeping traffic is
/// never charged to whichever user span happens to be open — charges
/// stay a deterministic function of the program, not of scheduling.
#[must_use]
pub fn exempt() -> ExemptGuard {
    let prev = LOCAL
        .try_with(|l| l.top.replace(std::ptr::null()))
        .unwrap_or(std::ptr::null());
    ExemptGuard { prev }
}

impl Drop for ExemptGuard {
    fn drop(&mut self) {
        let _ = LOCAL.try_with(|l| l.top.set(self.prev));
    }
}

/// Reports a numeric bit-width (e.g. of a `BigInt` coefficient) to the
/// global ledger and the innermost scope: both keep a racy max. Numeric
/// growth thereby lands in the same per-span columns as heap traffic.
#[inline]
pub fn record_bits(bits: u64) {
    if !COUNTING.load(Ordering::Relaxed) {
        return;
    }
    raise_racy_u64(&MAX_BITS, bits);
    let top = LOCAL.try_with(|l| l.top.get()).unwrap_or(std::ptr::null());
    if !top.is_null() {
        // Safety: non-null `top` always points at the ScopeCell of a
        // live guard on this thread (the guard holds the Arc).
        let cell = unsafe { &*top };
        raise_racy_u64(&cell.max_bits, bits);
    }
}

// ---------------------------------------------------------------------------
// The allocator
// ---------------------------------------------------------------------------

/// The counting wrapper around [`System`]. Installed as the workspace's
/// `#[global_allocator]` by this crate, so every binary that links
/// `aov-support` counts.
pub struct CountingAlloc;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

impl CountingAlloc {
    #[inline]
    fn note_alloc(size: usize) {
        if !COUNTING.load(Ordering::Relaxed) {
            return;
        }
        // `try_with` so allocations during TLS teardown fall back to
        // direct global counting instead of aborting.
        let landed = LOCAL.try_with(|l| {
            let allocs = l.allocs.get() + 1;
            l.allocs.set(allocs);
            l.bytes.set(l.bytes.get() + size as u64);
            let top = l.top.get();
            if !top.is_null() {
                // Scope attribution stays per-event and exact: scopes
                // only exist while profiling, where precision beats the
                // shared-line cost.
                // Safety: as in `record_bits`.
                let cell = unsafe { &*top };
                cell.allocs.fetch_add(1, Ordering::Relaxed);
                cell.bytes.fetch_add(size as u64, Ordering::Relaxed);
                let net = cell.net.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
                raise_racy(&cell.peak, net);
            }
            if allocs & (FLUSH_EVERY - 1) == 0 || size >= FLUSH_SIZE {
                flush_cells(l);
            }
        });
        if landed.is_err() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(size as u64, Ordering::Relaxed);
        }
    }

    #[inline]
    fn note_free(size: usize) {
        if !COUNTING.load(Ordering::Relaxed) {
            return;
        }
        let landed = LOCAL.try_with(|l| {
            let frees = l.frees.get() + 1;
            l.frees.set(frees);
            l.freed_bytes.set(l.freed_bytes.get() + size as u64);
            let top = l.top.get();
            if !top.is_null() {
                // Safety: as in `record_bits`.
                let cell = unsafe { &*top };
                cell.frees.fetch_add(1, Ordering::Relaxed);
                cell.freed_bytes.fetch_add(size as u64, Ordering::Relaxed);
                cell.net.fetch_sub(size as i64, Ordering::Relaxed);
            }
            if frees & (FLUSH_EVERY - 1) == 0 || size >= FLUSH_SIZE {
                flush_cells(l);
            }
        });
        if landed.is_err() {
            FREES.fetch_add(1, Ordering::Relaxed);
            FREED_BYTES.fetch_add(size as u64, Ordering::Relaxed);
        }
    }
}

// Safety: delegates every operation to `System` unchanged; the
// bookkeeping touches only atomics and a const-init TLS `Cell`, so it
// cannot recurse into the allocator or unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    #[inline]
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            Self::note_alloc(layout.size());
        }
        p
    }

    #[inline]
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        Self::note_free(layout.size());
    }

    #[inline]
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            Self::note_alloc(layout.size());
        }
        p
    }

    #[inline]
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            Self::note_free(layout.size());
            Self::note_alloc(new_size);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_ledger_counts_boxes() {
        let before = stats();
        let v = std::hint::black_box(vec![0u8; 4096]);
        let mid = stats();
        drop(v);
        let after = stats();
        assert!(mid.allocs > before.allocs);
        assert!(mid.bytes >= before.bytes + 4096);
        assert!(after.frees > before.frees);
        assert!(after.freed_bytes >= before.freed_bytes + 4096);
        assert!(mid.peak >= mid.live);
    }

    #[test]
    fn scope_charges_exact_bytes() {
        let s = scope();
        let v = std::hint::black_box(vec![0u8; 1000]);
        let stats = s.stats();
        assert_eq!(stats.allocs, 1);
        assert_eq!(stats.bytes, 1000);
        assert_eq!(stats.net, 1000);
        assert_eq!(stats.peak, 1000);
        drop(v);
        let stats = s.stats();
        assert_eq!(stats.frees, 1);
        assert_eq!(stats.net, 0);
        assert_eq!(stats.peak, 1000);
    }

    #[test]
    fn nested_scopes_attribute_to_innermost() {
        let outer = scope();
        let a = std::hint::black_box(vec![0u8; 100]);
        {
            let inner = scope();
            let b = std::hint::black_box(vec![0u8; 1_000_000]);
            drop(b);
            let inner_stats = inner.stats();
            assert_eq!(inner_stats.bytes, 1_000_000, "inner sees only its own");
            assert_eq!(inner_stats.peak, 1_000_000);
        }
        drop(a);
        // The outer scope never saw the inner megabyte: the shadow-stack
        // push for the inner guard is charged to the caller (outer), so
        // allow that bookkeeping but nothing near the inner's traffic.
        let outer_stats = outer.stats();
        assert!(
            outer_stats.bytes < 100_000,
            "outer charged {} bytes, expected only its own 100 plus guard bookkeeping",
            outer_stats.bytes
        );
        assert!(outer_stats.bytes >= 100);
    }

    #[test]
    fn adopt_charges_parent_scope_across_threads() {
        let parent = scope();
        let handle = parent.handle();
        std::thread::scope(|s| {
            for _ in 0..2 {
                let handle = handle.clone();
                s.spawn(move || {
                    let _adopted = adopt(&handle);
                    let v = std::hint::black_box(vec![0u8; 10_000]);
                    drop(v);
                });
            }
        });
        let stats = parent.stats();
        assert!(stats.bytes >= 20_000, "both workers charged: {stats:?}");
        assert_eq!(stats.net, stats.bytes as i64 - stats.freed_bytes as i64);
    }

    #[test]
    fn current_handle_sees_innermost() {
        assert!(current_handle().is_none() || current_handle().is_some()); // other tests may nest
        let outer = scope();
        let h = current_handle().expect("scope open");
        assert!(Arc::ptr_eq(&h.cell, &outer.cell));
        {
            let inner = scope();
            let h2 = current_handle().expect("inner open");
            assert!(Arc::ptr_eq(&h2.cell, &inner.cell));
        }
        let h3 = current_handle().expect("outer restored");
        assert!(Arc::ptr_eq(&h3.cell, &outer.cell));
    }

    #[test]
    fn record_bits_raises_scope_and_global_max() {
        let s = scope();
        record_bits(17);
        record_bits(5);
        assert_eq!(s.stats().max_bits, 17);
        assert!(stats().max_bits >= 17);
        record_bits(23);
        assert_eq!(s.stats().max_bits, 23);
    }

    #[test]
    fn exempt_suspends_scope_attribution() {
        let s = scope();
        {
            let _pause = exempt();
            let v = std::hint::black_box(vec![0u8; 4096]);
            drop(v);
        }
        let v = std::hint::black_box(vec![0u8; 128]);
        std::hint::black_box(&v);
        let stats = s.stats();
        assert_eq!(
            stats.bytes, 128,
            "exempted traffic must not charge: {stats:?}"
        );
    }

    #[test]
    fn handle_outlives_guard() {
        let h = {
            let s = scope();
            let _v = std::hint::black_box(vec![0u8; 64]);
            s.handle()
        };
        // Guard dropped; the handle still reads the final tallies.
        assert!(h.stats().bytes >= 64);
    }

    #[test]
    fn realloc_counts_both_sides() {
        let s = scope();
        let mut v = std::hint::black_box(vec![0u8; 100]);
        v.reserve_exact(900); // realloc 100 -> >=1000
        std::hint::black_box(&v);
        let stats = s.stats();
        assert!(stats.allocs >= 2, "{stats:?}");
        assert!(stats.frees >= 1, "{stats:?}");
        assert!(stats.net >= 1000, "{stats:?}");
    }
}
