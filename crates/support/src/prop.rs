//! A seeded property-test runner.
//!
//! Each property runs `cases` times against inputs drawn from a
//! deterministic [`Rng`]. Every case gets an independent seed derived
//! from the base seed and the case index; on failure the runner reports
//! both, so `Rng::new(reported_seed)` reproduces the failing input
//! exactly. There is no shrinking — generators here draw small values by
//! construction, which keeps counterexamples readable without it.
//!
//! The [`props!`](crate::props) macro declares a block of properties:
//!
//! ```
//! use aov_support::{props, prop_assume};
//!
//! props! {
//!     #![cases = 64, seed = 0xA0B5_EED5]
//!
//!     fn addition_commutes(g) {
//!         let (a, b) = (g.i64_in(-1000, 1000), g.i64_in(-1000, 1000));
//!         assert_eq!(a + b, b + a);
//!     }
//!
//!     fn division_undoes_multiplication(g) {
//!         let a = g.i64_in(-100, 100);
//!         let b = g.i64_in(-10, 10);
//!         prop_assume!(b != 0); // discards the case, not a failure
//!         assert_eq!(a * b / b, a);
//!     }
//! }
//! # fn main() {}
//! ```

use crate::rng::{mix, Rng};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Panic payload marking a discarded (assumption-failed) case.
#[derive(Debug)]
pub struct Discard;

/// Discards the current case; the runner draws a fresh one instead of
/// counting a failure. Prefer [`prop_assume!`](crate::prop_assume).
pub fn discard() -> ! {
    resume_unwind(Box::new(Discard));
}

/// Discards the current property-test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            $crate::prop::discard();
        }
    };
}

/// Runs `property` against `cases` seeded inputs. Discarded cases are
/// replaced (drawing further derived seeds) up to a 10× budget; exceeding
/// it fails the test, because the property is then effectively untested.
///
/// # Panics
///
/// Re-raises the property's panic after printing the case index and the
/// per-case seed that reproduces it.
pub fn run(name: &str, cases: u64, seed: u64, property: impl Fn(&mut Rng)) {
    assert!(cases > 0, "property {name} configured with zero cases");
    let budget = cases * 10;
    let mut executed = 0u64;
    for attempt in 0..budget {
        if executed == cases {
            return;
        }
        let case_seed = mix(seed, attempt);
        let mut rng = Rng::new(case_seed);
        match catch_unwind(AssertUnwindSafe(|| property(&mut rng))) {
            Ok(()) => executed += 1,
            Err(payload) => {
                if payload.downcast_ref::<Discard>().is_some() {
                    continue;
                }
                eprintln!(
                    "property `{name}` failed at case {executed} \
                     (case seed {case_seed:#018x}; rerun with Rng::new(seed))"
                );
                resume_unwind(payload);
            }
        }
    }
    panic!(
        "property `{name}` discarded too many cases: \
         {executed}/{cases} ran within a budget of {budget} attempts"
    );
}

/// Declares seeded property tests; see the [module docs](self) for the
/// shape. `#![cases = N, seed = S]` applies to every property in the
/// block.
#[macro_export]
macro_rules! props {
    (
        #![cases = $cases:expr, seed = $seed:expr]
        $( $(#[$meta:meta])* fn $name:ident($g:ident) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                $crate::prop::run(
                    stringify!($name),
                    $cases,
                    $seed,
                    |$g: &mut $crate::rng::Rng| $body,
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u64;
        let counter = std::cell::Cell::new(0u64);
        run("always_true", 16, 1, |_| {
            counter.set(counter.get() + 1);
        });
        count += counter.get();
        assert_eq!(count, 16);
    }

    #[test]
    fn failing_property_propagates_panic() {
        let r = catch_unwind(|| {
            run("always_false", 8, 2, |_| panic!("nope"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn assumptions_discard_without_failing() {
        let executed = std::cell::Cell::new(0u64);
        run("half_discarded", 10, 3, |g| {
            let v = g.i64_in(0, 9);
            crate::prop_assume!(v < 5);
            executed.set(executed.get() + 1);
        });
        assert_eq!(executed.get(), 10);
    }

    #[test]
    fn hopeless_assumption_exhausts_budget() {
        let r = catch_unwind(|| {
            run("all_discarded", 4, 4, |_| crate::prop_assume!(false));
        });
        assert!(r.is_err(), "must fail when nothing ever runs");
    }

    #[test]
    fn cases_are_deterministic() {
        let collect = || {
            let vals = std::cell::RefCell::new(Vec::new());
            run("collect", 6, 99, |g| {
                vals.borrow_mut().push(g.next_u64());
            });
            vals.into_inner()
        };
        assert_eq!(collect(), collect());
    }
}
