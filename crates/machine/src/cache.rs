//! Set-associative LRU caches.

/// Cache geometry.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Ways per set.
    pub associativity: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> u64 {
        (self.size_bytes / self.line_bytes / u64::from(self.associativity)).max(1)
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }
}

/// A set-associative LRU cache over byte addresses.
///
/// # Examples
///
/// ```
/// use aov_machine::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig {
///     size_bytes: 1024,
///     line_bytes: 64,
///     associativity: 2,
/// });
/// assert!(!c.access(0));   // cold miss
/// assert!(c.access(8));    // same line: hit
/// assert!(!c.access(4096)); // different line: miss
/// assert_eq!(c.stats().misses, 2);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    line_shift: u32,
    /// Per set: tags in MRU-first order.
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
}

impl Cache {
    /// An empty (cold) cache.
    ///
    /// # Panics
    ///
    /// Panics unless `line_bytes` is a power of two and the geometry is
    /// consistent.
    pub fn new(config: CacheConfig) -> Self {
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(config.associativity >= 1, "associativity must be >= 1");
        let sets = config.num_sets();
        Cache {
            line_shift: config.line_bytes.trailing_zeros(),
            sets: vec![Vec::with_capacity(config.associativity as usize); sets as usize],
            config,
            stats: CacheStats::default(),
        }
    }

    /// Touches `addr`; returns `true` on hit. Misses allocate (evicting
    /// LRU).
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set_idx = (line % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            set.remove(pos);
            set.insert(0, line);
            self.stats.hits += 1;
            true
        } else {
            if set.len() == self.config.associativity as usize {
                set.pop();
            }
            set.insert(0, line);
            self.stats.misses += 1;
            false
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets counters but keeps contents (for per-phase accounting).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// The geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets × 2 ways × 64B lines = 256B.
        Cache::new(CacheConfig {
            size_bytes: 256,
            line_bytes: 64,
            associativity: 2,
        })
    }

    #[test]
    fn spatial_locality_within_line() {
        let mut c = tiny();
        assert!(!c.access(0));
        for off in 1..64 {
            assert!(c.access(off), "offset {off} shares the line");
        }
        assert_eq!(
            c.stats(),
            CacheStats {
                hits: 63,
                misses: 1
            }
        );
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Lines 0, 2, 4 map to set 0 (even line numbers, 2 sets).
        assert!(!c.access(0));
        assert!(!c.access(2 * 64));
        assert!(!c.access(4 * 64)); // evicts line 0 (LRU)
        assert!(!c.access(0)); // line 0 gone
        assert!(c.access(4 * 64)); // still resident
    }

    #[test]
    fn lru_refresh_on_hit() {
        let mut c = tiny();
        c.access(0);
        c.access(2 * 64);
        c.access(0); // refresh line 0 → line 2*64 is now LRU
        c.access(4 * 64); // evicts 2*64
        assert!(c.access(0), "refreshed line survives");
        assert!(!c.access(2 * 64), "stale line evicted");
    }

    #[test]
    fn working_set_fits_or_thrashes() {
        // 256B cache: a 256B working set streams fine, a 512B one
        // (conflict-free assumption violated) misses forever.
        let mut c = tiny();
        let small: Vec<u64> = (0..4).map(|k| k * 64).collect();
        for _ in 0..10 {
            for &a in &small {
                c.access(a);
            }
        }
        assert_eq!(c.stats().misses, 4, "only cold misses");
        let mut c = tiny();
        let big: Vec<u64> = (0..8).map(|k| k * 64).collect();
        for _ in 0..10 {
            for &a in &big {
                c.access(a);
            }
        }
        assert_eq!(c.stats().hits, 0, "LRU thrashes on cyclic overflow");
    }

    #[test]
    fn num_sets() {
        assert_eq!(
            CacheConfig {
                size_bytes: 4 << 20,
                line_bytes: 128,
                associativity: 2
            }
            .num_sets(),
            16384
        );
    }
}
