//! Byte-address layouts for original and occupancy-vector-transformed
//! arrays.
//!
//! The closed-form transformed mappings used here (`A[i−j+m]` for
//! Example 2, `D[i−j+ymax][i−k+zmax]` for Example 3) are the paper's
//! Figures 9 and 11; `aov-core`'s `StorageTransform` tests confirm the
//! same collapse behaviour, so the trace generators can use the compact
//! closed forms directly.

/// Bytes per array element (double precision, as on the Origin).
pub const ELEM_BYTES: i64 = 8;

/// Address mapping of one array.
#[derive(Debug, Clone)]
pub enum Layout {
    /// Row-major `dims` box, `base` byte offset.
    Original { base: i64, dims: Vec<i64> },
    /// Example 2 transformed: `A[i − j + m]` (1-d of extent n+m−1).
    DiagonalCollapse2D { base: i64, m: i64 },
    /// Example 3 transformed: `D[i−j+ymax][i−k+zmax]`
    /// (2-d of extents (x+y−1) × (x+z−1)).
    DiagonalCollapse3D {
        base: i64,
        ymax: i64,
        zmax: i64,
        xmax: i64,
    },
}

impl Layout {
    /// Byte address of an element (indices are 1-based like the paper's
    /// loops; callers pass original data-space indices).
    pub fn addr(&self, idx: &[i64]) -> u64 {
        let a = match self {
            Layout::Original { base, dims } => {
                assert_eq!(idx.len(), dims.len(), "index arity");
                let mut off = 0i64;
                for (x, d) in idx.iter().zip(dims) {
                    off = off * d + (x - 1).rem_euclid(*d);
                }
                base + off * ELEM_BYTES
            }
            Layout::DiagonalCollapse2D { base, m } => {
                let [i, j] = idx else {
                    panic!("2-d index expected")
                };
                base + (i - j + m) * ELEM_BYTES
            }
            Layout::DiagonalCollapse3D {
                base,
                ymax,
                zmax,
                xmax,
            } => {
                let [i, j, k] = idx else {
                    panic!("3-d index expected")
                };
                let r = i - j + ymax; // in [1, xmax + ymax - 1]
                let c = i - k + zmax;
                base + (r * (xmax + zmax) + c) * ELEM_BYTES
            }
        };
        a as u64
    }

    /// Total footprint in bytes (for placing several arrays).
    pub fn footprint(&self) -> i64 {
        match self {
            Layout::Original { dims, .. } => dims.iter().product::<i64>() * ELEM_BYTES,
            Layout::DiagonalCollapse2D { m, .. } => {
                // Callers size n via dims; extent bounded by n+m; use a
                // generous bound of 4m for placement.
                4 * m * ELEM_BYTES
            }
            Layout::DiagonalCollapse3D {
                ymax, zmax, xmax, ..
            } => (xmax + ymax) * (xmax + zmax) * ELEM_BYTES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn original_row_major() {
        let l = Layout::Original {
            base: 0,
            dims: vec![4, 5],
        };
        assert_eq!(l.addr(&[1, 1]), 0);
        assert_eq!(l.addr(&[1, 2]), 8);
        assert_eq!(l.addr(&[2, 1]), 5 * 8);
        assert_eq!(l.footprint(), 20 * 8);
    }

    #[test]
    fn diagonal_2d_collapses_along_1_1() {
        let l = Layout::DiagonalCollapse2D { base: 0, m: 10 };
        assert_eq!(l.addr(&[3, 4]), l.addr(&[4, 5]));
        assert_ne!(l.addr(&[3, 4]), l.addr(&[3, 5]));
    }

    #[test]
    fn diagonal_3d_collapses_along_1_1_1() {
        let l = Layout::DiagonalCollapse3D {
            base: 0,
            ymax: 8,
            zmax: 8,
            xmax: 8,
        };
        assert_eq!(l.addr(&[2, 3, 4]), l.addr(&[3, 4, 5]));
        assert_ne!(l.addr(&[2, 3, 4]), l.addr(&[2, 4, 4]));
        assert_ne!(l.addr(&[2, 3, 4]), l.addr(&[2, 3, 5]));
    }

    #[test]
    fn distinct_bases_do_not_collide() {
        let a = Layout::Original {
            base: 0,
            dims: vec![10, 10],
        };
        let b = Layout::Original {
            base: a.footprint(),
            dims: vec![10, 10],
        };
        assert_ne!(a.addr(&[10, 10]), b.addr(&[1, 1]));
    }
}
