//! A simulated shared-memory multiprocessor, substituting the paper's
//! SGI Origin 2000 (MIPS R10000, 4 MB L2) for the §6 experiments.
//!
//! The paper's Figures 15–16 make three qualitative claims:
//!
//! 1. **Example 2** (diagonal strips, no synchronization): original and
//!    transformed arrays show the *same trend*, neither improves much
//!    past ~16 processors, and the transformed code is ahead by a
//!    sizable constant factor (Fig. 15).
//! 2. **Example 3** (blocked wavefront): the transformed code is
//!    substantially faster (Fig. 16), and
//! 3. its speedup is *superlinear* because the reduced working set fits
//!    in cache.
//!
//! All three are cache phenomena, so the simulator models exactly the
//! machinery they depend on: per-processor set-associative LRU caches
//! with a DRAM miss penalty ([`cache`]), a shared memory bus that
//! serializes misses, per-strip/per-block trace-driven cost accounting,
//! and pipelined wavefront timing for the blocked decomposition
//! ([`parallel`], [`experiments`]). Absolute cycle counts are not
//! calibrated to the Origin; the *shape* of the curves is what the
//! reproduction targets (see `EXPERIMENTS.md`).
//!
//! # Examples
//!
//! ```
//! use aov_machine::{experiments, MachineConfig};
//!
//! let cfg = MachineConfig::scaled_down();
//! let pts = experiments::example2_speedup(&cfg, 96, 96, &[1, 2, 4]);
//! assert_eq!(pts.len(), 3);
//! // The transformed storage never loses to the original.
//! assert!(pts.iter().all(|p| p.transformed >= p.original));
//! ```

pub mod cache;
pub mod experiments;
pub mod layout;
pub mod parallel;

pub use cache::{Cache, CacheConfig, CacheStats};

/// Timing and topology parameters of the simulated machine.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Per-processor cache geometry.
    pub cache: CacheConfig,
    /// Cycles per executed statement instance (compute).
    pub op_cost: u64,
    /// Cycles per cache hit.
    pub hit_cost: u64,
    /// Additional cycles per cache miss (DRAM latency).
    pub miss_cost: u64,
    /// Bus occupancy per miss — misses from all processors serialize on
    /// the shared memory system.
    pub bus_cost: u64,
    /// Per-processor coordination overhead (task dispatch, NUMA traffic)
    /// added once per run per processor.
    pub proc_overhead: u64,
    /// Barrier cost per pipeline stage (Example 3's wavefront).
    pub sync_cost: u64,
}

impl MachineConfig {
    /// Parameters shaped after the paper's platform (4 MB two-way L2,
    /// 128-byte lines): ~40 cycles of compute per statement instance
    /// (the stencil body is a function call), a 40-cycle effective miss
    /// penalty (the R10000 overlaps misses), a shared-bus occupancy per
    /// miss and a per-processor coordination overhead.
    pub fn origin_like() -> Self {
        MachineConfig {
            cache: CacheConfig {
                size_bytes: 4 << 20,
                line_bytes: 128,
                associativity: 2,
            },
            op_cost: 40,
            hit_cost: 1,
            miss_cost: 40,
            bus_cost: 4,
            proc_overhead: 10_000,
            sync_cost: 200,
        }
    }

    /// A proportionally scaled-down machine (64 KB caches) so that the
    /// cache-capacity effects of the paper appear at simulation-friendly
    /// problem sizes.
    pub fn scaled_down() -> Self {
        MachineConfig {
            cache: CacheConfig {
                size_bytes: 64 << 10,
                line_bytes: 128,
                associativity: 2,
            },
            ..MachineConfig::origin_like()
        }
    }

    /// A memory-bound variant of [`MachineConfig::scaled_down`] for
    /// Example 3: the DP cell update is a handful of ALU operations
    /// (min/add), so memory latency and bandwidth dominate — the regime
    /// in which the paper observed its Figure 16 separation and
    /// superlinear speedups.
    pub fn memory_bound() -> Self {
        MachineConfig {
            op_cost: 8,
            miss_cost: 100,
            bus_cost: 12,
            ..MachineConfig::scaled_down()
        }
    }
}
