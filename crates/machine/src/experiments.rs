//! The paper's §6 experiments: speedup curves for Examples 2 and 3
//! (Figures 15 and 16).

use crate::cache::Cache;
use crate::layout::{Layout, ELEM_BYTES};
use crate::parallel::{cyclic_assignment, independent_time, wavefront_time, WorkCost};
use crate::MachineConfig;

/// One point of a speedup curve: speedups of the original and the
/// transformed code over the sequential original.
#[derive(Debug, Clone)]
pub struct SpeedupPoint {
    pub procs: usize,
    pub original: f64,
    pub transformed: f64,
}

/// Storage variants of an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    Original,
    Transformed,
}

// ---------------------------------------------------------------------
// Example 2 (Figure 15): diagonal strips, no synchronization
// ---------------------------------------------------------------------

/// Absolute simulated time of Example 2 (`n × m`, two statements) under
/// `procs` processors with the given storage variant.
///
/// Strips follow the zero-communication processor mapping
/// `π(S1) = i − j`, `π(S2) = i − j + 1` (Lim & Lam): each strip is a
/// dependent chain, strips are mutually independent and assigned
/// cyclically.
pub fn example2_time(cfg: &MachineConfig, n: i64, m: i64, procs: usize, variant: Variant) -> u64 {
    let (a_layout, b_layout) = example2_layouts(n, m, variant);
    // Strips c = i − j ∈ [1−m, n−1]… every S1 instance has c ∈ [1−m, n−1].
    let strips: Vec<i64> = (1 - m..=n - 1).collect();
    let assign = cyclic_assignment(strips.len(), procs);
    let mut per_proc: Vec<WorkCost> = vec![WorkCost::default(); procs];
    let mut caches: Vec<Cache> = (0..procs).map(|_| Cache::new(cfg.cache.clone())).collect();
    for (sidx, &c) in strips.iter().enumerate() {
        let p = assign[sidx];
        let cache = &mut caches[p];
        let cost = &mut per_proc[p];
        // Walk the chain: S1(i, j) with i − j = c, then S2(i, j+1).
        let i0 = 1.max(c + 1);
        let j0 = i0 - c;
        let (mut i, mut j) = (i0, j0);
        while i <= n && j <= m {
            // S1(i, j): read B[i-1][j], write A[i][j].
            cost.ops += 1;
            for addr in [b_layout.addr(&[i - 1, j]), a_layout.addr(&[i, j])] {
                if cache.access(addr) {
                    cost.hits += 1;
                } else {
                    cost.misses += 1;
                }
            }
            // S2(i, j+1): read A[i][j], write B[i][j+1].
            if j < m {
                cost.ops += 1;
                for addr in [a_layout.addr(&[i, j]), b_layout.addr(&[i, j + 1])] {
                    if cache.access(addr) {
                        cost.hits += 1;
                    } else {
                        cost.misses += 1;
                    }
                }
            }
            i += 1;
            j += 1;
        }
    }
    independent_time(cfg, &per_proc)
}

fn example2_layouts(n: i64, m: i64, variant: Variant) -> (Layout, Layout) {
    match variant {
        Variant::Original => {
            let a = Layout::Original {
                base: 0,
                dims: vec![n, m],
            };
            let base = a.footprint();
            (
                a,
                Layout::Original {
                    base,
                    dims: vec![n, m],
                },
            )
        }
        Variant::Transformed => {
            let a = Layout::DiagonalCollapse2D { base: 0, m };
            let base = a.footprint() + 2 * m * ELEM_BYTES;
            (a, Layout::DiagonalCollapse2D { base, m })
        }
    }
}

/// Figure 15: speedup vs processors for Example 2 (both variants,
/// relative to the sequential original).
pub fn example2_speedup(cfg: &MachineConfig, n: i64, m: i64, procs: &[usize]) -> Vec<SpeedupPoint> {
    example2_speedup_with(cfg, n, m, procs, 1)
}

/// [`example2_speedup`] with the per-processor-count simulations fanned
/// out over `workers` threads (`<= 1` means sequential). Each point is an
/// independent deterministic simulation, so the curve is bit-identical to
/// the sequential sweep.
pub fn example2_speedup_with(
    cfg: &MachineConfig,
    n: i64,
    m: i64,
    procs: &[usize],
    workers: usize,
) -> Vec<SpeedupPoint> {
    let baseline = example2_time(cfg, n, m, 1, Variant::Original) as f64;
    fan_out_points(procs, workers, &|p| SpeedupPoint {
        procs: p,
        original: baseline / example2_time(cfg, n, m, p, Variant::Original) as f64,
        transformed: baseline / example2_time(cfg, n, m, p, Variant::Transformed) as f64,
    })
}

/// Maps each processor count to its speedup point, in input order,
/// optionally across scoped worker threads.
fn fan_out_points(
    procs: &[usize],
    workers: usize,
    point: &(dyn Fn(usize) -> SpeedupPoint + Sync),
) -> Vec<SpeedupPoint> {
    if workers <= 1 || procs.len() <= 1 {
        return procs.iter().map(|&p| point(p)).collect();
    }
    let mut slots: Vec<Option<SpeedupPoint>> = vec![None; procs.len()];
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slot_refs: Vec<std::sync::Mutex<&mut Option<SpeedupPoint>>> =
        slots.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|s| {
        for _ in 0..workers.min(procs.len()) {
            s.spawn(|| loop {
                let k = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if k >= procs.len() {
                    break;
                }
                let pt = point(procs[k]);
                **slot_refs[k].lock().unwrap() = Some(pt);
            });
        }
    });
    drop(slot_refs);
    slots
        .into_iter()
        .map(|s| s.expect("every point simulated"))
        .collect()
}

// ---------------------------------------------------------------------
// Example 3 (Figure 16): blocked wavefront over the DP cube
// ---------------------------------------------------------------------

/// Absolute simulated time of Example 3 (`x × y × z` DP cube) under
/// `procs` processors: the `j` axis is split into per-processor panels,
/// the `i` axis forms pipeline stages, and each block's cost comes from
/// trace-driven per-processor cache simulation.
pub fn example3_time(
    cfg: &MachineConfig,
    x: i64,
    y: i64,
    z: i64,
    procs: usize,
    variant: Variant,
) -> u64 {
    let d_layout = match variant {
        Variant::Original => Layout::Original {
            base: 0,
            dims: vec![x, y, z],
        },
        Variant::Transformed => Layout::DiagonalCollapse3D {
            base: 0,
            ymax: y,
            zmax: z,
            xmax: x,
        },
    };
    // Panel bounds over j (contiguous, near-equal blocks).
    let panels: Vec<(i64, i64)> = (0..procs)
        .map(|p| {
            let lo = 1 + y * p as i64 / procs as i64;
            let hi = y * (p as i64 + 1) / procs as i64;
            (lo, hi)
        })
        .collect();
    let offsets: [(i64, i64, i64); 7] = [
        (-1, -1, -1),
        (0, -1, -1),
        (-1, 0, -1),
        (-1, -1, 0),
        (-1, 0, 0),
        (0, -1, 0),
        (0, 0, -1),
    ];
    let mut caches: Vec<Cache> = (0..procs).map(|_| Cache::new(cfg.cache.clone())).collect();
    let mut blocks: Vec<Vec<u64>> = Vec::with_capacity(x as usize);
    for i in 1..=x {
        let mut row = Vec::with_capacity(procs);
        for (p, &(jlo, jhi)) in panels.iter().enumerate() {
            let cache = &mut caches[p];
            cache.reset_stats();
            let mut ops = 0u64;
            for j in jlo.max(1)..=jhi {
                for k in 1..=z {
                    ops += 1;
                    // Write D[i][j][k].
                    cache.access(d_layout.addr(&[i, j, k]));
                    // 7 stencil reads (clamped at the boundary).
                    for &(oi, oj, ok) in &offsets {
                        let (ri, rj, rk) = (i + oi, j + oj, k + ok);
                        if ri >= 1 && rj >= 1 && rk >= 1 {
                            cache.access(d_layout.addr(&[ri, rj, rk]));
                        }
                    }
                }
            }
            let st = cache.stats();
            let cost = WorkCost {
                ops,
                hits: st.hits,
                misses: st.misses,
            };
            row.push(cost.cycles(cfg));
        }
        blocks.push(row);
    }
    wavefront_time(cfg, &blocks)
}

/// Figure 16: speedup vs processors for Example 3.
pub fn example3_speedup(
    cfg: &MachineConfig,
    x: i64,
    y: i64,
    z: i64,
    procs: &[usize],
) -> Vec<SpeedupPoint> {
    example3_speedup_with(cfg, x, y, z, procs, 1)
}

/// [`example3_speedup`] with the per-processor-count simulations fanned
/// out over `workers` threads (`<= 1` means sequential).
pub fn example3_speedup_with(
    cfg: &MachineConfig,
    x: i64,
    y: i64,
    z: i64,
    procs: &[usize],
    workers: usize,
) -> Vec<SpeedupPoint> {
    let baseline = example3_time(cfg, x, y, z, 1, Variant::Original) as f64;
    fan_out_points(procs, workers, &|p| SpeedupPoint {
        procs: p,
        original: baseline / example3_time(cfg, x, y, z, p, Variant::Original) as f64,
        transformed: baseline / example3_time(cfg, x, y, z, p, Variant::Transformed) as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::scaled_down()
    }

    /// Figure 15's qualitative shape at test scale: the transformed
    /// variant wins at every processor count, both speed up with more
    /// processors before flattening.
    #[test]
    fn fig15_shape() {
        let pts = example2_speedup(&cfg(), 128, 128, &[1, 2, 4, 8, 16]);
        for w in &pts {
            assert!(
                w.transformed > w.original,
                "transformed must lead at P={}: {w:?}",
                w.procs
            );
        }
        // Speedup grows initially.
        assert!(pts[1].original > pts[0].original);
        assert!(pts[1].transformed > pts[0].transformed);
        // The constant-factor gap is sizable (paper: roughly 2×-4×).
        let gap = pts.last().unwrap().transformed / pts.last().unwrap().original;
        assert!(gap > 1.3, "gap {gap}");
    }

    /// Figure 16's qualitative shape: transformed substantially better;
    /// superlinear speedup appears once per-processor panels fit in
    /// cache.
    #[test]
    fn fig16_shape() {
        let cfg = MachineConfig::memory_bound();
        let pts = example3_speedup(&cfg, 24, 48, 48, &[1, 2, 4, 8]);
        for w in &pts {
            assert!(
                w.transformed >= w.original,
                "transformed must not lose at P={}: {w:?}",
                w.procs
            );
        }
        let superlinear = pts.iter().any(|w| w.transformed > w.procs as f64);
        assert!(superlinear, "expected a superlinear point: {pts:?}");
    }

    #[test]
    fn example2_transformed_uses_fewer_misses_via_time() {
        let cfg = cfg();
        let t_orig = example2_time(&cfg, 96, 96, 1, Variant::Original);
        let t_trans = example2_time(&cfg, 96, 96, 1, Variant::Transformed);
        assert!(
            t_trans < t_orig,
            "transformed {t_trans} vs original {t_orig}"
        );
    }

    #[test]
    fn example3_times_decrease_with_processors() {
        let cfg = cfg();
        let t1 = example3_time(&cfg, 16, 32, 32, 1, Variant::Transformed);
        let t4 = example3_time(&cfg, 16, 32, 32, 4, Variant::Transformed);
        assert!(t4 < t1);
    }
}
