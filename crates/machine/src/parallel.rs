//! Parallel decompositions and timing models.

use crate::MachineConfig;

/// Aggregate cost of a processor's (or block's) work.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkCost {
    /// Statement instances executed.
    pub ops: u64,
    /// Cache hits.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
}

impl WorkCost {
    /// Local execution cycles under a machine configuration.
    pub fn cycles(&self, cfg: &MachineConfig) -> u64 {
        self.ops * cfg.op_cost
            + self.hits * cfg.hit_cost
            + self.misses * (cfg.hit_cost + cfg.miss_cost)
    }

    /// Accumulates another cost.
    pub fn add(&mut self, other: WorkCost) {
        self.ops += other.ops;
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// Cyclic assignment of work units to processors (balances the varying
/// diagonal lengths of Example 2's strips).
pub fn cyclic_assignment(num_units: usize, procs: usize) -> Vec<usize> {
    (0..num_units).map(|u| u % procs.max(1)).collect()
}

/// Completion time of fully independent per-processor work: the slowest
/// processor bounds compute; all misses serialize on the shared bus; a
/// per-processor coordination overhead grows with the machine size.
pub fn independent_time(cfg: &MachineConfig, per_proc: &[WorkCost]) -> u64 {
    let compute = per_proc.iter().map(|c| c.cycles(cfg)).max().unwrap_or(0);
    let total_misses: u64 = per_proc.iter().map(|c| c.misses).sum();
    let bus = total_misses * cfg.bus_cost;
    compute.max(bus) + per_proc.len() as u64 * cfg.proc_overhead
}

/// Completion time of a pipelined wavefront over a `stages × panels`
/// block grid: block `(s, p)` starts after `(s−1, p)` and `(s, p−1)`
/// (Example 3's stencil offsets never increase `j`, so no dependence
/// flows from higher panels), each block paying a synchronization cost.
pub fn wavefront_time(cfg: &MachineConfig, block_cycles: &[Vec<u64>]) -> u64 {
    let stages = block_cycles.len();
    if stages == 0 {
        return 0;
    }
    let panels = block_cycles[0].len();
    let mut done = vec![vec![0u64; panels]; stages];
    for s in 0..stages {
        for p in 0..panels {
            let mut start = 0u64;
            if s > 0 {
                start = start.max(done[s - 1][p]);
            }
            if p > 0 {
                start = start.max(done[s][p - 1]);
            }
            done[s][p] = start + block_cycles[s][p] + cfg.sync_cost;
        }
    }
    let mut finish = 0;
    for row in &done {
        for &d in row {
            finish = finish.max(d);
        }
    }
    finish + panels as u64 * cfg.proc_overhead
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::scaled_down()
    }

    #[test]
    fn work_cost_cycles() {
        let c = WorkCost {
            ops: 10,
            hits: 5,
            misses: 2,
        };
        let cfg = cfg();
        assert_eq!(
            c.cycles(&cfg),
            10 * cfg.op_cost + 5 * cfg.hit_cost + 2 * (cfg.hit_cost + cfg.miss_cost)
        );
    }

    #[test]
    fn cyclic_assignment_balances() {
        let a = cyclic_assignment(10, 3);
        assert_eq!(a.len(), 10);
        let count = |p| a.iter().filter(|&&x| x == p).count();
        assert_eq!(count(0), 4);
        assert_eq!(count(1), 3);
        assert_eq!(count(2), 3);
    }

    #[test]
    fn independent_time_bounded_by_slowest_and_bus() {
        let cfg = cfg();
        let fast = WorkCost {
            ops: 10,
            hits: 0,
            misses: 0,
        };
        let slow = WorkCost {
            ops: 1000,
            hits: 0,
            misses: 0,
        };
        let t = independent_time(&cfg, &[fast, slow]);
        assert!(t >= slow.cycles(&cfg));
        // Bus-bound case.
        let missy = WorkCost {
            ops: 1,
            hits: 0,
            misses: 100_000,
        };
        let t2 = independent_time(&cfg, &[missy, missy]);
        assert!(t2 >= 200_000 * cfg.bus_cost);
    }

    #[test]
    fn wavefront_degenerates_to_serial_chain_on_one_panel() {
        let cfg = cfg();
        let blocks = vec![vec![10], vec![20], vec![30]];
        let t = wavefront_time(&cfg, &blocks);
        assert_eq!(t, 60 + 3 * cfg.sync_cost + cfg.proc_overhead);
    }

    #[test]
    fn wavefront_pipelines_across_panels() {
        let cfg = MachineConfig {
            sync_cost: 0,
            proc_overhead: 0,
            ..cfg()
        };
        // 4 stages × 2 panels of unit blocks: pipeline fills in
        // stages + panels − 1 = 5 steps.
        let blocks = vec![vec![1, 1]; 4];
        assert_eq!(wavefront_time(&cfg, &blocks), 5);
    }
}
