//! In-process load testing: spin up a real `aovd` over loopback TCP,
//! hammer it with N concurrent clients over the example corpus, and
//! summarize latencies, shed load, and cross-request memo economics as
//! a JSON document the bench observatory attaches to its artifact
//! (`aov bench --serve-clients N`, `scripts/loadtest.sh`).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use aov_support::histogram::Histogram;
use aov_support::Json;

use crate::client::{self, ClientConfig};
use crate::protocol::{self, SolveOptions};
use crate::server::{Server, ServerConfig};

/// Shape of one load-test campaign.
#[derive(Debug, Clone)]
pub struct LoadtestConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Corpus example names each client cycles through.
    pub examples: Vec<String>,
    /// Passes each client makes over the corpus.
    pub iterations: usize,
    /// Daemon worker threads.
    pub workers: usize,
    /// Daemon queue bound — small enough that a burst of clients
    /// provokes real `overloaded` shedding, exercising the backoff.
    pub queue_limit: usize,
}

impl Default for LoadtestConfig {
    fn default() -> Self {
        LoadtestConfig {
            clients: 8,
            examples: vec!["example1".to_string()],
            iterations: 2,
            workers: 2,
            queue_limit: 4,
        }
    }
}

/// Runs a campaign against a freshly-started in-process daemon and
/// returns the summary document. The shared memo tier is armed for the
/// daemon's lifetime and restored afterwards, so a surrounding bench
/// suite keeps its own memo economics.
///
/// # Errors
///
/// Daemon startup failures, or any client whose retries were
/// exhausted without a terminal frame.
pub fn run(cfg: &LoadtestConfig) -> Result<Json, String> {
    let memo_was_enabled = aov_lp::memo::enabled();
    let server = Server::start(ServerConfig {
        workers: cfg.workers,
        queue_limit: cfg.queue_limit,
        memo: true,
        ..ServerConfig::default()
    })
    .map_err(|e| format!("aovd startup: {e}"))?;
    let addr = server.addr().to_string();
    let memo_before = aov_lp::memo::stats();

    // Latencies go into the shared log-bucketed histogram rather than
    // a raw vector: min/median/max alone hide the tail, and the same
    // quantile code now serves the daemon's own `metrics` verb.
    let latencies_us = Histogram::new();
    let requests = AtomicU64::new(0);
    let completed = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let attempts = AtomicU64::new(0);
    let overloaded_retries = AtomicU64::new(0);
    let hard_errors: AtomicU32 = AtomicU32::new(0);
    std::thread::scope(|s| {
        for c in 0..cfg.clients {
            let addr = &addr;
            let latencies_us = &latencies_us;
            let requests = &requests;
            let completed = &completed;
            let failed = &failed;
            let attempts = &attempts;
            let overloaded_retries = &overloaded_retries;
            let hard_errors = &hard_errors;
            s.spawn(move || {
                let client_cfg = ClientConfig {
                    addr: addr.clone(),
                    retries: 20,
                    base_ms: 2,
                    cap_ms: 500,
                    seed: 0x10ad + c as u64,
                };
                let options = SolveOptions {
                    memoize: true,
                    ..SolveOptions::default()
                };
                for iter in 0..cfg.iterations {
                    for (e, example) in cfg.examples.iter().enumerate() {
                        let id = (c * 1_000_000 + iter * 1_000 + e) as i64;
                        let frame = protocol::solve_frame(id, (example, true), &options);
                        let start = std::time::Instant::now();
                        match client::call(&client_cfg, &frame, None) {
                            Ok(outcome) => {
                                let us =
                                    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
                                latencies_us.record(us);
                                requests.fetch_add(1, Ordering::Relaxed);
                                attempts.fetch_add(u64::from(outcome.attempts), Ordering::Relaxed);
                                overloaded_retries.fetch_add(
                                    u64::from(outcome.overloaded_retries),
                                    Ordering::Relaxed,
                                );
                                if outcome.frame.get("type")
                                    == Some(&Json::Str("report".to_string()))
                                {
                                    completed.fetch_add(1, Ordering::Relaxed);
                                } else {
                                    failed.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Err(_) => {
                                hard_errors.fetch_add(1, Ordering::Relaxed);
                                failed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
    });

    // One stats probe for the daemon-side view, then a clean shutdown.
    let stats = client::call(
        &ClientConfig {
            addr: addr.clone(),
            retries: 3,
            base_ms: 2,
            cap_ms: 100,
            seed: 1,
        },
        &protocol::plain_frame("stats", -1),
        None,
    )
    .map(|o| o.frame)
    .unwrap_or(Json::Null);
    server.shutdown();
    let memo_after = aov_lp::memo::stats();
    if !memo_was_enabled {
        aov_lp::memo::set_enabled(false); // clears; bench runs stay cold
    }

    let lat = latencies_us.snapshot();
    let hits = memo_after.hits - memo_before.hits;
    let misses = memo_after.misses - memo_before.misses;
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };
    if hard_errors.load(Ordering::Relaxed) > 0 {
        return Err(format!(
            "{} request(s) exhausted retries without a terminal frame",
            hard_errors.load(Ordering::Relaxed)
        ));
    }
    Ok(Json::obj()
        .field("schema", protocol::SCHEMA)
        .field("type", "loadtest")
        .field("clients", cfg.clients)
        .field("iterations", cfg.iterations)
        .field(
            "examples",
            cfg.examples
                .iter()
                .map(|e| Json::from(e.as_str()))
                .collect::<Vec<_>>(),
        )
        .field("requests", requests.load(Ordering::Relaxed))
        .field("completed", completed.load(Ordering::Relaxed))
        .field("failed", failed.load(Ordering::Relaxed))
        .field("attempts", attempts.load(Ordering::Relaxed))
        .field(
            "overloaded_retries",
            overloaded_retries.load(Ordering::Relaxed),
        )
        .field(
            "latency_us",
            Json::obj()
                .field("count", lat.count())
                .field("p50", lat.quantile(0.50))
                .field("p90", lat.quantile(0.90))
                .field("p99", lat.quantile(0.99))
                .field("max", lat.max_value()),
        )
        .field(
            "memo",
            Json::obj()
                .field("hits", hits)
                .field("misses", misses)
                .field("hit_rate", hit_rate),
        )
        .field("daemon", stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_campaign_completes_with_warm_memo_and_no_restarts() {
        let cfg = LoadtestConfig {
            clients: 4,
            iterations: 2,
            workers: 1,
            queue_limit: 2, // tight: shed load must retry to success
            ..LoadtestConfig::default()
        };
        let doc = run(&cfg).expect("campaign completes");
        let requests = cfg.clients * cfg.iterations * cfg.examples.len();
        assert_eq!(doc.get("requests"), Some(&Json::Int(requests as i64)));
        assert_eq!(doc.get("completed"), Some(&Json::Int(requests as i64)));
        assert_eq!(doc.get("failed"), Some(&Json::Int(0)));
        // Identical programs across requests: the shared tier must hit.
        let memo = doc.get("memo").expect("memo block");
        match memo.get("hit_rate") {
            Some(Json::Float(rate)) => assert!(*rate > 0.0, "no cross-request hits"),
            other => panic!("hit_rate missing: {other:?}"),
        }
        // No worker was lost to the load.
        let daemon = doc.get("daemon").expect("daemon stats");
        assert_eq!(daemon.get("worker_restarts"), Some(&Json::Int(0)));
        // Histogram quantiles replace min/median/max: every completed
        // request was recorded and the tail is ordered.
        let lat = doc.get("latency_us").expect("latency block");
        assert_eq!(lat.get("count"), Some(&Json::Int(requests as i64)));
        let q = |k: &str| match lat.get(k) {
            Some(Json::Int(v)) => *v,
            other => panic!("latency_us.{k} missing: {other:?}"),
        };
        assert!(q("p50") > 0, "p50 must be nonzero");
        assert!(
            q("p50") <= q("p90") && q("p90") <= q("p99"),
            "quantiles ordered"
        );
        assert!(
            q("p99") / 2 <= q("max"),
            "max bounds the tail (midpoint slack)"
        );
    }
}
