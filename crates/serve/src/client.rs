//! The resilient `aov client`: one-frame-per-connection requests with
//! retry and decorrelated-jitter exponential backoff.
//!
//! Solves are pure request/response computations, so retries are
//! idempotent by construction — the only state a retry can change is
//! the daemon's memo tier, which is semantically transparent. The
//! client retries on connection failures, torn/absent responses, and
//! structured `overloaded` rejections (honoring their `retry_after_ms`
//! hint as a floor); every other frame — reports, faults, deadline
//! errors — is a terminal answer handed back to the caller.
//!
//! Backoff follows the decorrelated-jitter scheme: each delay is drawn
//! uniformly from `[base, prev * 3]`, clamped to a cap — retries
//! desynchronize instead of stampeding the daemon in lockstep.

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::time::Duration;

use aov_support::rng::Rng;
use aov_support::Json;

use crate::protocol::{self, code};

/// How the client connects and retries.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Daemon address, e.g. `127.0.0.1:7401`.
    pub addr: String,
    /// Retry attempts after the first try (0 = fail fast).
    pub retries: u32,
    /// Backoff floor in milliseconds.
    pub base_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub cap_ms: u64,
    /// Jitter seed (vary per client; fixed seeds make tests exact).
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            addr: "127.0.0.1:7401".to_string(),
            retries: 8,
            base_ms: 5,
            cap_ms: 2_000,
            seed: 0x5eed,
        }
    }
}

/// Decorrelated-jitter backoff state.
pub struct Backoff {
    rng: Rng,
    base_ms: u64,
    cap_ms: u64,
    prev_ms: u64,
}

impl Backoff {
    #[must_use]
    pub fn new(base_ms: u64, cap_ms: u64, seed: u64) -> Backoff {
        let base_ms = base_ms.max(1);
        Backoff {
            rng: Rng::new(seed),
            base_ms,
            cap_ms: cap_ms.max(base_ms),
            prev_ms: base_ms,
        }
    }

    /// The next delay: uniform in `[base, prev * 3]` clamped to the
    /// cap, with the server's `retry_after_ms` hint as a floor.
    pub fn next_delay(&mut self, floor_ms: Option<u64>) -> Duration {
        let hi = self
            .prev_ms
            .saturating_mul(3)
            .clamp(self.base_ms + 1, self.cap_ms);
        let span = hi - self.base_ms + 1;
        let mut ms = self.base_ms + self.rng.next_u64() % span;
        if let Some(floor) = floor_ms {
            ms = ms.max(floor);
        }
        self.prev_ms = ms.max(self.base_ms);
        Duration::from_millis(ms.min(self.cap_ms.max(floor_ms.unwrap_or(0))))
    }
}

/// A captured request/response exchange, serializable as an
/// `aov-serve/1` transcript document for `aov inspect --check`.
#[derive(Debug, Default)]
pub struct Transcript {
    frames: Vec<(&'static str, Json)>,
}

impl Transcript {
    fn record(&mut self, dir: &'static str, frame: &Json) {
        self.frames.push((dir, frame.clone()));
    }

    /// The transcript document (`type: "transcript"`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("schema", protocol::SCHEMA)
            .field("type", "transcript")
            .field(
                "frames",
                self.frames
                    .iter()
                    .map(|(dir, frame)| {
                        Json::obj().field("dir", *dir).field("frame", frame.clone())
                    })
                    .collect::<Vec<_>>(),
            )
    }
}

/// The terminal result of a (possibly retried) request.
#[derive(Debug)]
pub struct Outcome {
    /// The daemon's final frame (a `report`, `stats`, `health`,
    /// `shutdown` ack, or a non-retryable `error`).
    pub frame: Json,
    /// Total attempts made (1 = no retries needed).
    pub attempts: u32,
    /// How many attempts were shed with `overloaded` before success.
    pub overloaded_retries: u32,
}

/// One attempt: connect, send the frame, read one response line.
fn attempt(addr: &str, line: &str) -> Result<Json, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| format!("send: {e}"))?;
    let mut response = String::new();
    BufReader::new(stream)
        .read_line(&mut response)
        .map_err(|e| format!("recv: {e}"))?;
    if response.trim().is_empty() {
        return Err("connection closed before a response frame".to_string());
    }
    Json::parse(response.trim()).map_err(|e| format!("bad response frame: {e}"))
}

/// Opens one connection, sends `request`, and consumes the daemon's
/// frame stream until it terminates — the client side of the `watch`
/// verb and of `solve` frames carrying `"watch": true`.
///
/// Every frame (stream or terminal) is handed to `on_frame` in
/// arrival order. The stream ends at the `watch_end` frame the daemon
/// always sends — after the final report for a followed solve, after
/// the horizon/drain for a bare watch, and immediately after an
/// admission rejection — or at EOF. Returns the terminal answer: the
/// `report`/`error` frame when one arrived, otherwise the `watch_end`
/// itself.
///
/// No retries: a stream subscription is not idempotent — replaying it
/// would silently skip the events recorded between attempts.
///
/// # Errors
///
/// Transport failures, or a connection that closed before any frame.
pub fn stream(addr: &str, request: &Json, mut on_frame: impl FnMut(&Json)) -> Result<Json, String> {
    let mut line = request.to_compact();
    line.push('\n');
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| format!("send: {e}"))?;
    let reader = BufReader::new(stream);
    let mut terminal: Option<Json> = None;
    for received in reader.lines() {
        let received = received.map_err(|e| format!("recv: {e}"))?;
        if received.trim().is_empty() {
            continue;
        }
        let frame = Json::parse(received.trim()).map_err(|e| format!("bad stream frame: {e}"))?;
        let kind = match frame.get("type") {
            Some(Json::Str(s)) => s.clone(),
            _ => String::new(),
        };
        on_frame(&frame);
        match kind.as_str() {
            "watch" | "events" => {}
            "watch_end" => return Ok(terminal.unwrap_or(frame)),
            _ => terminal = Some(frame),
        }
    }
    terminal.ok_or_else(|| "connection closed before a terminal frame".to_string())
}

/// Sends `request` with retry + backoff, returning the terminal frame.
///
/// # Errors
///
/// A transport-level description when every attempt failed to produce
/// a frame (daemon down, connections dropped mid-response, retries
/// exhausted on `overloaded`).
pub fn call(
    cfg: &ClientConfig,
    request: &Json,
    mut transcript: Option<&mut Transcript>,
) -> Result<Outcome, String> {
    let mut line = request.to_compact();
    line.push('\n');
    let mut backoff = Backoff::new(cfg.base_ms, cfg.cap_ms, cfg.seed);
    let mut overloaded_retries = 0u32;
    let mut last_err = String::new();
    for attempt_no in 1..=cfg.retries.saturating_add(1) {
        if let Some(t) = transcript.as_deref_mut() {
            t.record("send", request);
        }
        match attempt(&cfg.addr, &line) {
            Ok(frame) => {
                if let Some(t) = transcript.as_deref_mut() {
                    t.record("recv", &frame);
                }
                let is_overloaded = frame.get("type") == Some(&Json::Str("error".into()))
                    && frame.get("code") == Some(&Json::Str(code::OVERLOADED.into()));
                if is_overloaded {
                    overloaded_retries += 1;
                    last_err = "overloaded".to_string();
                    let hint = match frame.get("retry_after_ms") {
                        Some(Json::Int(ms)) if *ms >= 0 => Some(*ms as u64),
                        _ => None,
                    };
                    std::thread::sleep(backoff.next_delay(hint));
                    continue;
                }
                return Ok(Outcome {
                    frame,
                    attempts: attempt_no,
                    overloaded_retries,
                });
            }
            Err(e) => {
                last_err = e;
                std::thread::sleep(backoff.next_delay(None));
            }
        }
    }
    Err(format!(
        "retries exhausted after {} attempts: {last_err}",
        cfg.retries.saturating_add(1)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_jittered_bounded_and_honors_the_hint() {
        let mut b = Backoff::new(5, 400, 7);
        let mut seen = std::collections::HashSet::new();
        let mut prev_allowed = 5u64 * 3;
        for _ in 0..50 {
            let d = b.next_delay(None).as_millis() as u64;
            assert!(d >= 5, "below base: {d}");
            assert!(d <= 400, "above cap: {d}");
            assert!(d <= prev_allowed.max(6), "not decorrelated: {d}");
            prev_allowed = d.saturating_mul(3).min(400);
            seen.insert(d);
        }
        assert!(seen.len() > 5, "delays must jitter, got {seen:?}");
        // The server hint is a floor even early in the schedule.
        let mut b = Backoff::new(5, 400, 7);
        assert!(b.next_delay(Some(120)).as_millis() >= 120);
    }

    #[test]
    fn transcript_documents_validate() {
        let mut t = Transcript::default();
        t.record("send", &protocol::plain_frame("health", 9));
        t.record(
            "recv",
            &protocol::plain_frame("health", 9).field("status", "ok"),
        );
        let doc = t.to_json();
        aov_support::schema::validate(&doc, &protocol::transcript_schema())
            .expect("transcript validates");
    }

    #[test]
    fn unreachable_daemon_exhausts_retries_with_context() {
        let cfg = ClientConfig {
            addr: "127.0.0.1:1".to_string(), // reserved port: refused
            retries: 1,
            base_ms: 1,
            cap_ms: 2,
            seed: 1,
        };
        let err =
            call(&cfg, &protocol::plain_frame("health", 1), None).expect_err("no daemon there");
        assert!(err.contains("retries exhausted"), "{err}");
    }
}
