//! Solver-as-a-service: the `aovd` daemon and its resilient client.
//!
//! This crate turns the batch pipeline into a long-lived service
//! without importing anything: a hand-rolled thread-pool TCP server
//! speaking newline-delimited `aov-serve/1` JSON frames. Five legs
//! carry the robustness story:
//!
//! 1. **Admission control** ([`server`]) — a bounded request queue and
//!    a pivot-denominated admission pool; excess load is shed with a
//!    structured `overloaded` error carrying `retry_after_ms`, and
//!    requests whose deadline expired while queued are dropped before
//!    any solver work is spent on them.
//! 2. **Worker supervision** ([`server`]) — every solve runs under
//!    `catch_unwind` with a cooperative budget; a panicking or
//!    budget-tripped solve degrades to the pipeline's ladder semantics,
//!    writes an `aov-diag/1` bundle, and the supervisor restarts the
//!    poisoned worker so the daemon keeps serving.
//! 3. **Shared memo tier** ([`aov_lp::memo`]) — canonically-keyed LP
//!    solves are cached across requests in a sharded, LRU-bounded
//!    single-flight cache; responses report hit/miss/eviction counts.
//! 4. **Client resilience** ([`client`]) — retry with
//!    decorrelated-jitter exponential backoff that honors the server's
//!    `retry_after_ms` hint; solves are idempotent so retries are safe.
//! 5. **Chaos coverage** ([`protocol`], [`server`]) — `serve.accept`,
//!    `serve.request` and `serve.memo` fault probes; every injection
//!    surfaces as a clean structured error while the daemon keeps
//!    serving subsequent requests bit-identically.
//! 6. **Telemetry plane** ([`telemetry`]) — lock-free latency
//!    histograms per phase and verdict, rolling 1/10/60 s rate
//!    windows, worker states, the `metrics` and `watch` verbs
//!    (`aov-svcmetrics/1`, live flight-recorder tails), and the
//!    size-rotated `aov-access/1` structured access log.
//!
//! [`loadtest`] packages the whole story as a measurable campaign for
//! `aov bench --serve-clients N`.

pub mod client;
pub mod loadtest;
pub mod protocol;
pub mod server;
pub mod telemetry;
