//! The daemon's telemetry plane: latency histograms per phase and
//! verdict, rolling request-rate windows, worker states, the
//! `aov-svcmetrics/1` metrics document, and the `aov-access/1`
//! structured access log.
//!
//! Everything here follows the measurement-integrity discipline the
//! bench observatory established: artifacts are schema-versioned and
//! validated (`aov inspect --check`), quantiles come from a real
//! distribution ([`aov_support::histogram`]) rather than a sample
//! vector, and recording is lock-free — a relaxed `fetch_add` per
//! phase — so the telemetry never becomes the contention point it is
//! supposed to diagnose.
//!
//! # Phases and verdicts
//!
//! Each request's wall time is decomposed into [`Phase`]s
//! (queue-wait → solve → serialize, plus the admission walk and the
//! end-to-end total); each *completed* request also lands its
//! end-to-end latency in one [`Verdict`] histogram, so "p99 of faults"
//! and "p99 of clean solves" stay separable.
//!
//! # Rolling windows
//!
//! Request, shed, and memo-hit rates over the last 1 s / 10 s / 60 s
//! come from a ring of per-second epoch counters: bumping is two
//! relaxed atomic ops, reading sums the slots whose epoch stamp is
//! still inside the window. Slots recycle lazily as the clock enters
//! them — no timer thread, no locks.
//!
//! # Access log
//!
//! One compact JSON line per request (`aov-access/1`): who asked for
//! what, what the admission layer decided, where the time went, and
//! what it did to the memo tier. Size-based rotation keeps the file
//! bounded: when a write would exceed the cap the current file moves
//! to `<path>.1` (replacing the previous rollover) and a fresh file
//! starts.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use aov_support::histogram::{Histogram, Snapshot};
use aov_support::schema::Schema;
use aov_support::Json;

/// Schema tag of the metrics document the `metrics` verb returns.
pub const SVCMETRICS_SCHEMA: &str = "aov-svcmetrics/1";

/// Schema tag of one access-log line.
pub const ACCESS_SCHEMA: &str = "aov-access/1";

/// Default access-log rotation threshold (bytes).
pub const ACCESS_LOG_MAX_BYTES: u64 = 8 * 1024 * 1024;

/// A request's measured phases, in display order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Admission walk: parse, chaos probes, pool/queue checks.
    Admission = 0,
    /// Enqueue to worker pickup.
    QueueWait = 1,
    /// The pipeline run itself.
    Solve = 2,
    /// Report-frame construction and the socket write.
    Serialize = 3,
    /// First byte of the request to last byte of the response.
    EndToEnd = 4,
}

/// Stable lower-snake phase names (metrics document, `aov top`).
pub const PHASE_NAMES: [&str; 5] = [
    "admission",
    "queue_wait",
    "solve",
    "serialize",
    "end_to_end",
];

/// How a request ultimately resolved, for latency attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Verdict {
    /// A report with `health: ok` (including refuted equivalence).
    Ok = 0,
    /// A report with degraded or failed ladder health.
    Degraded = 1,
    /// Shed: queue/pool overload, expired deadline, or draining.
    Overloaded = 2,
    /// Faulted: service-layer fault, parse or malformed request.
    Fault = 3,
}

/// Stable lower-snake verdict names (metrics document, `aov top`).
pub const VERDICT_NAMES: [&str; 4] = ["ok", "degraded", "overloaded", "fault"];

/// Counter kinds tracked by the rolling windows.
#[derive(Debug, Clone, Copy)]
#[repr(usize)]
pub enum WindowKind {
    /// Solve requests reaching admission.
    Requests = 0,
    /// Requests shed without solving (overloaded/deadline/draining).
    Shed = 1,
    /// Cross-request memo hits.
    MemoHits = 2,
}

const WINDOW_KINDS: usize = 3;

/// Ring length in one-second epochs. 128 comfortably covers the 60 s
/// lookback; older slots recycle lazily as the clock re-enters them.
const WINDOW_RING: usize = 128;

struct EpochSlot {
    /// Which second this slot currently counts (`u64::MAX` = never).
    epoch: AtomicU64,
    counts: [AtomicU64; WINDOW_KINDS],
}

/// Rolling 1 s / 10 s / 60 s counters over a ring of epoch slots.
pub struct Windows {
    start: Instant,
    slots: Vec<EpochSlot>,
}

impl Windows {
    fn new(start: Instant) -> Windows {
        Windows {
            start,
            slots: (0..WINDOW_RING)
                .map(|_| EpochSlot {
                    epoch: AtomicU64::new(u64::MAX),
                    counts: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
                })
                .collect(),
        }
    }

    fn epoch_now(&self) -> u64 {
        self.start.elapsed().as_secs()
    }

    /// Adds `n` to `kind`'s counter for the current second.
    pub fn bump(&self, kind: WindowKind, n: u64) {
        if n == 0 {
            return;
        }
        let epoch = self.epoch_now();
        let slot = &self.slots[(epoch as usize) % WINDOW_RING];
        let seen = slot.epoch.load(Ordering::Acquire);
        if seen != epoch {
            // First writer into a recycled slot resets it. A racing
            // bump between the claim and the resets can misplace a
            // count at the epoch boundary — rates are estimates, the
            // histograms are the exact record.
            if slot
                .epoch
                .compare_exchange(seen, epoch, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                for c in &slot.counts {
                    c.store(0, Ordering::Relaxed);
                }
            }
        }
        slot.counts[kind as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Sum of `kind` over the last `window_secs` whole seconds
    /// (including the current, still-filling one).
    #[must_use]
    pub fn sum(&self, kind: WindowKind, window_secs: u64) -> u64 {
        let now = self.epoch_now();
        let floor = now.saturating_sub(window_secs.saturating_sub(1).min(WINDOW_RING as u64 - 1));
        self.slots
            .iter()
            .filter(|s| {
                let e = s.epoch.load(Ordering::Acquire);
                e != u64::MAX && e >= floor && e <= now
            })
            .map(|s| s.counts[kind as usize].load(Ordering::Relaxed))
            .sum()
    }

    fn json(&self, kind: WindowKind) -> Json {
        Json::obj()
            .field("s1", self.sum(kind, 1))
            .field("s10", self.sum(kind, 10))
            .field("s60", self.sum(kind, 60))
    }
}

/// Worker states surfaced by `stats` and `metrics`.
pub mod worker_state {
    /// Waiting on the queue.
    pub const IDLE: u8 = 0;
    /// Running a job.
    pub const SOLVING: u8 = 1;
    /// Supervisor restarting the loop after an escaped panic.
    pub const RESTARTING: u8 = 2;

    /// Stable name for a state code.
    #[must_use]
    pub fn name(state: u8) -> &'static str {
        match state {
            SOLVING => "solving",
            RESTARTING => "restarting",
            _ => "idle",
        }
    }
}

/// The daemon's whole telemetry surface — one instance per server,
/// shared by reference across connection and worker threads.
pub struct Telemetry {
    start: Instant,
    phases: [Histogram; PHASE_NAMES.len()],
    verdicts: [Histogram; VERDICT_NAMES.len()],
    /// Rolling request/shed/memo-hit rate windows.
    pub windows: Windows,
    worker_states: Vec<AtomicU8>,
}

impl Telemetry {
    /// Fresh telemetry for a daemon with `workers` solver threads.
    #[must_use]
    pub fn new(workers: usize) -> Telemetry {
        let start = Instant::now();
        Telemetry {
            start,
            phases: [
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
            ],
            verdicts: [
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
            ],
            windows: Windows::new(start),
            worker_states: (0..workers)
                .map(|_| AtomicU8::new(worker_state::IDLE))
                .collect(),
        }
    }

    /// Milliseconds since the daemon started.
    #[must_use]
    pub fn uptime_ms(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Records one phase latency (nanoseconds). One relaxed
    /// `fetch_add`.
    #[inline]
    pub fn record_phase(&self, phase: Phase, nanos: u64) {
        self.phases[phase as usize].record(nanos);
    }

    /// Records a request's end-to-end latency under its verdict.
    #[inline]
    pub fn record_verdict(&self, verdict: Verdict, nanos: u64) {
        self.verdicts[verdict as usize].record(nanos);
    }

    /// Sets worker `idx`'s state (out-of-range indices are ignored).
    pub fn set_worker_state(&self, idx: usize, state: u8) {
        if let Some(s) = self.worker_states.get(idx) {
            s.store(state, Ordering::Relaxed);
        }
    }

    /// Per-worker `{id, state}` rows.
    #[must_use]
    pub fn workers_json(&self) -> Json {
        Json::Arr(
            self.worker_states
                .iter()
                .enumerate()
                .map(|(id, s)| {
                    Json::obj()
                        .field("id", id)
                        .field("state", worker_state::name(s.load(Ordering::Relaxed)))
                })
                .collect(),
        )
    }

    /// The `windows` block of the metrics document.
    #[must_use]
    pub fn windows_json(&self) -> Json {
        Json::obj()
            .field("requests", self.windows.json(WindowKind::Requests))
            .field("shed", self.windows.json(WindowKind::Shed))
            .field("memo_hits", self.windows.json(WindowKind::MemoHits))
    }

    /// The `phases` block: one histogram summary per phase.
    #[must_use]
    pub fn phases_json(&self) -> Json {
        Json::Arr(
            PHASE_NAMES
                .iter()
                .zip(self.phases.iter())
                .map(|(name, h)| histogram_json(name, &h.snapshot()))
                .collect(),
        )
    }

    /// The `verdicts` block: end-to-end latency split by outcome.
    #[must_use]
    pub fn verdicts_json(&self) -> Json {
        Json::Arr(
            VERDICT_NAMES
                .iter()
                .zip(self.verdicts.iter())
                .map(|(name, h)| histogram_json(name, &h.snapshot()))
                .collect(),
        )
    }

    /// Snapshot of one phase's histogram (tests, loadtest reuse).
    #[must_use]
    pub fn phase_snapshot(&self, phase: Phase) -> Snapshot {
        self.phases[phase as usize].snapshot()
    }
}

/// One histogram as a metrics-document entry: deterministic quantiles
/// plus the sparse bucket array the quantiles were derived from, so a
/// consumer can re-derive or merge across scrapes.
#[must_use]
pub fn histogram_json(name: &str, snap: &Snapshot) -> Json {
    Json::obj()
        .field("name", name)
        .field("count", snap.count())
        .field("p50_ns", snap.quantile(0.50))
        .field("p90_ns", snap.quantile(0.90))
        .field("p99_ns", snap.quantile(0.99))
        .field("p999_ns", snap.quantile(0.999))
        .field("max_ns", snap.max_value())
        .field(
            "buckets",
            Json::Arr(
                snap.nonzero_buckets()
                    .into_iter()
                    .map(|(i, c)| {
                        Json::Arr(vec![
                            Json::Int(i64::try_from(i).unwrap_or(i64::MAX)),
                            Json::Int(i64::try_from(c).unwrap_or(i64::MAX)),
                        ])
                    })
                    .collect(),
            ),
        )
}

fn histogram_entry_schema() -> Schema {
    Schema::object([
        ("name", Schema::Str, true),
        ("count", Schema::Int, true),
        ("p50_ns", Schema::Int, true),
        ("p90_ns", Schema::Int, true),
        ("p99_ns", Schema::Int, true),
        ("p999_ns", Schema::Int, true),
        ("max_ns", Schema::Int, true),
        ("buckets", Schema::array(Schema::array(Schema::Int)), true),
    ])
}

fn window_schema() -> Schema {
    Schema::object([
        ("s1", Schema::Int, true),
        ("s10", Schema::Int, true),
        ("s60", Schema::Int, true),
    ])
}

/// Structural schema of the `aov-svcmetrics/1` document, registered
/// with `aov inspect --check`.
#[must_use]
pub fn svcmetrics_schema() -> Schema {
    Schema::object([
        ("schema", Schema::Str, true),
        ("uptime_ms", Schema::Int, true),
        ("draining", Schema::Bool, true),
        ("queue_depth", Schema::Int, true),
        ("inflight", Schema::Int, true),
        ("served", Schema::Int, true),
        ("overloaded", Schema::Int, true),
        ("faults", Schema::Int, true),
        ("worker_restarts", Schema::Int, true),
        (
            "workers",
            Schema::array(Schema::object([
                ("id", Schema::Int, true),
                ("state", Schema::Str, true),
            ])),
            true,
        ),
        (
            "memo",
            Schema::object([
                ("entries", Schema::Int, true),
                ("hits", Schema::Int, true),
                ("misses", Schema::Int, true),
                ("evictions", Schema::Int, true),
            ]),
            true,
        ),
        (
            "windows",
            Schema::object([
                ("requests", window_schema(), true),
                ("shed", window_schema(), true),
                ("memo_hits", window_schema(), true),
            ]),
            true,
        ),
        ("phases", Schema::array(histogram_entry_schema()), true),
        ("verdicts", Schema::array(histogram_entry_schema()), true),
    ])
}

/// Structural schema of one `aov-access/1` log line, registered with
/// `aov inspect --check` (which validates every line of the file).
#[must_use]
pub fn access_schema() -> Schema {
    Schema::object([
        ("schema", Schema::Str, true),
        ("ts_ms", Schema::Int, true),
        ("id", Schema::Int, true),
        ("session", Schema::Int, true),
        ("program", Schema::Str, true),
        ("digest", Schema::Str, true),
        ("outcome", Schema::Str, true),
        ("exit_code", Schema::nullable(Schema::Int), true),
        (
            "phases",
            Schema::object([
                ("queue_wait_us", Schema::Int, true),
                ("solve_us", Schema::Int, true),
                ("serialize_us", Schema::Int, true),
                ("total_us", Schema::Int, true),
            ]),
            true,
        ),
        ("knobs", Schema::Any, true),
        (
            "memo",
            Schema::object([("hits", Schema::Int, true), ("misses", Schema::Int, true)]),
            true,
        ),
    ])
}

/// Everything one access-log line records about a request.
#[derive(Debug)]
pub struct AccessRecord<'a> {
    /// Client-chosen frame id.
    pub id: i64,
    /// Session id (0 when the request was shed before assignment).
    pub session: u64,
    /// Display name of the program (`examples/x.aov` or `<request>`).
    pub program: &'a str,
    /// FNV-1a digest of the program source.
    pub digest: &'a str,
    /// Verdict or error code (`ok`, `degraded`, `overloaded`,
    /// `deadline`, `parse`, `bad_request`, `fault`, `shutting_down`).
    pub outcome: &'a str,
    /// The report's exit code; `None` for shed/faulted requests.
    pub exit_code: Option<i32>,
    pub queue_wait_ns: u64,
    pub solve_ns: u64,
    pub serialize_ns: u64,
    pub total_ns: u64,
    /// The request's knobs (workers, memoize, budget, deadline_ms).
    pub knobs: Json,
    /// Memo-tier hits this request contributed (approximate under
    /// concurrent workers: deltas of the shared counters).
    pub memo_hits: u64,
    pub memo_misses: u64,
}

fn ns_to_us(ns: u64) -> u64 {
    ns / 1_000
}

impl AccessRecord<'_> {
    /// The `aov-access/1` line for this record.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let ts_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        Json::obj()
            .field("schema", ACCESS_SCHEMA)
            .field("ts_ms", ts_ms)
            .field("id", self.id)
            .field("session", self.session)
            .field("program", self.program)
            .field("digest", self.digest)
            .field("outcome", self.outcome)
            .field(
                "exit_code",
                self.exit_code
                    .map_or(Json::Null, |c| Json::Int(i64::from(c))),
            )
            .field(
                "phases",
                Json::obj()
                    .field("queue_wait_us", ns_to_us(self.queue_wait_ns))
                    .field("solve_us", ns_to_us(self.solve_ns))
                    .field("serialize_us", ns_to_us(self.serialize_ns))
                    .field("total_us", ns_to_us(self.total_ns)),
            )
            .field("knobs", self.knobs.clone())
            .field(
                "memo",
                Json::obj()
                    .field("hits", self.memo_hits)
                    .field("misses", self.memo_misses),
            )
    }
}

struct AccessLogInner {
    file: Option<File>,
    written: u64,
}

/// The structured access log: one `aov-access/1` JSON line per
/// request, size-rotated to `<path>.1`.
pub struct AccessLog {
    path: PathBuf,
    max_bytes: u64,
    inner: Mutex<AccessLogInner>,
}

impl AccessLog {
    /// Opens (appending) the log at `path`, rotating once a write
    /// would push the file past `max_bytes`.
    ///
    /// # Errors
    ///
    /// File creation/open errors.
    pub fn open(path: &Path, max_bytes: u64) -> std::io::Result<AccessLog> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let written = file.metadata().map(|m| m.len()).unwrap_or(0);
        Ok(AccessLog {
            path: path.to_path_buf(),
            max_bytes: max_bytes.max(1024),
            inner: Mutex::new(AccessLogInner {
                file: Some(file),
                written,
            }),
        })
    }

    /// Appends one record. Write errors are swallowed: losing a log
    /// line must never fail a request.
    pub fn append(&self, record: &AccessRecord<'_>) {
        let mut line = record.to_json().to_compact();
        line.push('\n');
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if inner.written > 0 && inner.written + line.len() as u64 > self.max_bytes {
            // Size rotation: current file becomes `<path>.1` (replacing
            // the previous rollover), a fresh file takes its place.
            inner.file = None;
            let mut rolled = self.path.as_os_str().to_owned();
            rolled.push(".1");
            let _ = std::fs::rename(&self.path, PathBuf::from(rolled));
            inner.written = 0;
            inner.file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.path)
                .ok();
        }
        let wrote = match inner.file.as_mut() {
            Some(f) => f.write_all(line.as_bytes()).is_ok() && f.flush().is_ok(),
            None => false,
        };
        if wrote {
            inner.written += line.len() as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aov_support::schema;

    fn sample_record<'a>(knobs: &'a Json) -> AccessRecord<'a> {
        let _ = knobs;
        AccessRecord {
            id: 7,
            session: 3,
            program: "examples/example1.aov",
            digest: "deadbeefdeadbeef",
            outcome: "ok",
            exit_code: Some(0),
            queue_wait_ns: 120_000,
            solve_ns: 5_400_000,
            serialize_ns: 80_000,
            total_ns: 5_700_000,
            knobs: knobs.clone(),
            memo_hits: 2,
            memo_misses: 1,
        }
    }

    #[test]
    fn access_lines_validate_against_their_schema() {
        let knobs = Json::obj().field("workers", 2).field("memoize", true);
        let line = sample_record(&knobs).to_json();
        schema::validate(&line, &access_schema()).expect("access line validates");
        // A shed request has no exit code — still valid (nullable).
        let mut shed = sample_record(&knobs);
        shed.exit_code = None;
        shed.outcome = "overloaded";
        schema::validate(&shed.to_json(), &access_schema()).expect("shed line validates");
    }

    #[test]
    fn metrics_document_shape_validates() {
        let t = Telemetry::new(2);
        t.record_phase(Phase::Solve, 1_500_000);
        t.record_phase(Phase::EndToEnd, 2_000_000);
        t.record_verdict(Verdict::Ok, 2_000_000);
        t.windows.bump(WindowKind::Requests, 1);
        t.set_worker_state(1, worker_state::SOLVING);
        let doc = Json::obj()
            .field("schema", SVCMETRICS_SCHEMA)
            .field("uptime_ms", t.uptime_ms())
            .field("draining", false)
            .field("queue_depth", 0)
            .field("inflight", 1)
            .field("served", 1)
            .field("overloaded", 0)
            .field("faults", 0)
            .field("worker_restarts", 0)
            .field("workers", t.workers_json())
            .field(
                "memo",
                Json::obj()
                    .field("entries", 0)
                    .field("hits", 0)
                    .field("misses", 0)
                    .field("evictions", 0),
            )
            .field("windows", t.windows_json())
            .field("phases", t.phases_json())
            .field("verdicts", t.verdicts_json());
        schema::validate(&doc, &svcmetrics_schema()).expect("metrics doc validates");
        // The solve phase saw one sample: its p50 must be nonzero.
        let solve = t.phase_snapshot(Phase::Solve);
        assert_eq!(solve.count(), 1);
        assert!(solve.quantile(0.5) > 0);
    }

    #[test]
    fn windows_roll_counts_into_rate_buckets() {
        let t = Telemetry::new(1);
        for _ in 0..5 {
            t.windows.bump(WindowKind::Requests, 1);
        }
        t.windows.bump(WindowKind::Shed, 2);
        assert_eq!(t.windows.sum(WindowKind::Requests, 1), 5);
        assert_eq!(t.windows.sum(WindowKind::Requests, 60), 5);
        assert_eq!(t.windows.sum(WindowKind::Shed, 10), 2);
        assert_eq!(t.windows.sum(WindowKind::MemoHits, 60), 0);
    }

    #[test]
    fn access_log_rotates_at_the_size_cap() {
        let dir = std::env::temp_dir().join(format!("aov-accesslog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("access.jsonl");
        let log = AccessLog::open(&path, 1_024).expect("open");
        let knobs = Json::obj().field("workers", 2);
        // Each line is a few hundred bytes; enough of them must spill
        // over the 1 KiB cap (floored at 1024) into a rollover file.
        for _ in 0..32 {
            log.append(&sample_record(&knobs));
        }
        let rolled = dir.join("access.jsonl.1");
        assert!(rolled.exists(), "rotation must produce {rolled:?}");
        assert!(
            std::fs::metadata(&path).unwrap().len() <= 1_024 + 512,
            "active file stays near the cap"
        );
        // Every surviving line in both files is valid aov-access/1.
        for p in [&path, &rolled] {
            let body = std::fs::read_to_string(p).unwrap();
            for line in body.lines().filter(|l| !l.trim().is_empty()) {
                let doc = Json::parse(line).expect("line parses");
                schema::validate(&doc, &access_schema()).expect("line validates");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Not a correctness test: the EXPERIMENTS.md access-log overhead
    // number comes from here. Run with
    //   cargo test -p aov-serve --release -- --ignored \
    //     measure_access_append_cost --nocapture
    #[test]
    #[ignore = "measurement, run explicitly"]
    fn measure_access_append_cost() {
        let dir = std::env::temp_dir().join(format!("aov-access-bench-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let log = AccessLog::open(&dir.join("bench.jsonl"), u64::MAX).unwrap();
        let knobs = Json::obj().field("workers", 2).field("memoize", true);
        let n: u32 = 10_000;
        let start = std::time::Instant::now();
        for i in 0..n {
            log.append(&AccessRecord {
                id: i64::from(i),
                session: u64::from(i),
                program: "example1",
                digest: "0123456789abcdef",
                outcome: "ok",
                exit_code: Some(0),
                queue_wait_ns: 12_000,
                solve_ns: 3_400_000,
                serialize_ns: 96_000,
                total_ns: 3_600_000,
                knobs: knobs.clone(),
                memo_hits: 3,
                memo_misses: 1,
            });
        }
        let elapsed = start.elapsed();
        println!(
            "access append: {n} lines in {elapsed:?} -> {:.0} ns/line",
            elapsed.as_nanos() as f64 / f64::from(n)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
