//! The `aov-serve/1` wire protocol: newline-delimited JSON frames over
//! a plain TCP stream.
//!
//! Every frame — request or response — is one line of compact JSON
//! carrying a `schema` tag and a frame `type`. Requests additionally
//! carry a client-chosen `id` that the daemon echoes back, so a client
//! multiplexing frames can correlate responses. The daemon never
//! writes a partial line: each frame is a single buffered write, so a
//! client sees either a whole frame or (on daemon death) a clean EOF,
//! never a torn one.
//!
//! # Request frames
//!
//! * `solve` — `{"schema","type":"solve","id",("source"|"example"),
//!   "options":{workers,memoize,budget:{pivots,nodes,ms},deadline_ms,
//!   chaos}}`. `source` is `.aov` program text; `example` names a
//!   corpus program. All options are optional.
//! * `stats` — queue depth, in-flight count, served/overloaded/restart
//!   counters, uptime, per-worker states, and the shared memo tier's
//!   economics.
//! * `health` — liveness probe (`ok` or `draining`).
//! * `shutdown` — asks the daemon to drain and exit.
//! * `metrics` — the full telemetry document
//!   (`aov-svcmetrics/1`): per-phase and per-verdict latency
//!   histograms, rolling rate windows, worker states.
//! * `watch` — subscribes this connection to the flight recorder:
//!   the daemon streams `events` frames (optionally filtered to one
//!   `session`) until the client disconnects, the optional `for_ms`
//!   horizon passes, or the daemon drains. A `solve` frame may also
//!   carry `"watch": true` to stream its own session's events on the
//!   same connection, interleaved before the final report.
//!
//! # Response frames
//!
//! * `report` — a full pipeline report plus the request's `session`
//!   id, a CLI-compatible `exit_code`, and a memo-tier snapshot.
//! * `error` — structured rejection: a stable `code`
//!   (`overloaded`, `deadline`, `parse`, `bad_request`, `fault`,
//!   `shutting_down`), a human message, and — for `overloaded` — a
//!   `retry_after_ms` hint the client backoff honors.
//! * `stats`, `health`, `shutdown` — mirrors of their requests.
//! * `metrics` — carries the `aov-svcmetrics/1` document under
//!   `metrics`.
//! * `events` — one batch of flight-recorder events plus an honest
//!   `dropped` count (events the ring overwrote before this
//!   subscriber could read them); `watch_end` terminates a stream
//!   with totals.
//!
//! Captured request/response transcripts are themselves documents
//! (`type":"transcript"`) validated by [`transcript_schema`] via
//! `aov inspect --check`.

use aov_engine::BudgetSpec;
use aov_support::schema::Schema;
use aov_support::Json;

/// The protocol identifier stamped into every frame and transcript.
pub const SCHEMA: &str = "aov-serve/1";

/// Stable error codes an `error` frame may carry.
pub mod code {
    /// Queue or admission pool exhausted; retry after `retry_after_ms`.
    pub const OVERLOADED: &str = "overloaded";
    /// The request's deadline passed before a worker picked it up.
    pub const DEADLINE: &str = "deadline";
    /// The program source failed to parse.
    pub const PARSE: &str = "parse";
    /// The frame itself is malformed (unknown type, bad field, …).
    pub const BAD_REQUEST: &str = "bad_request";
    /// The solve (or a `serve.*` probe) faulted; a diagnostic bundle
    /// was written when the daemon has a diag dir.
    pub const FAULT: &str = "fault";
    /// The daemon is draining and admits no new work.
    pub const SHUTTING_DOWN: &str = "shutting_down";
}

/// Per-request solve options (all optional on the wire).
#[derive(Debug, Clone, Default)]
pub struct SolveOptions {
    /// Solver fan-out width (`0`/absent = sequential).
    pub workers: usize,
    /// Request-level memoization opt-in (the daemon's shared tier must
    /// also be armed for it to matter).
    pub memoize: bool,
    /// Work/deadline budget enforced as admission policy.
    pub budget: BudgetSpec,
    /// Client deadline for the whole request, queue wait included.
    pub deadline_ms: Option<u64>,
    /// Request-scoped chaos spec (`serve.*` sites only — engine sites
    /// would be a cross-tenant side channel; arm those on the daemon).
    pub chaos: Option<String>,
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen correlation id, echoed in every response.
    pub id: i64,
    pub kind: RequestKind,
}

/// What the client asked for.
#[derive(Debug, Clone)]
pub enum RequestKind {
    /// Run a program through the pipeline.
    Solve {
        /// `.aov` source text (resolved from `example` when given).
        source: String,
        /// Display name for diagnostics (`examples/<name>.aov` or
        /// `<request>`).
        display: String,
        options: SolveOptions,
        /// Stream this solve's flight-recorder events on the same
        /// connection before the final report (`aov client --follow`).
        watch: bool,
    },
    Stats,
    Health,
    Shutdown,
    /// Return the `aov-svcmetrics/1` telemetry document.
    Metrics,
    /// Stream flight-recorder events until disconnect/drain.
    Watch {
        /// Only events stamped with this session (0 = all sessions).
        session: u64,
        /// Stop streaming after this horizon (None = until
        /// disconnect or drain).
        for_ms: Option<u64>,
    },
}

fn get_u64(j: &Json, key: &str) -> Option<u64> {
    match j.get(key) {
        Some(Json::Int(v)) if *v >= 0 => Some(*v as u64),
        _ => None,
    }
}

fn get_str<'a>(j: &'a Json, key: &str) -> Option<&'a str> {
    match j.get(key) {
        Some(Json::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Parses one request line. Errors are `(code, message)` pairs ready
/// for an `error` frame.
///
/// # Errors
///
/// `bad_request` for malformed JSON, a missing/unknown `type`, or an
/// unknown `example` name.
pub fn parse_request(line: &str) -> Result<Request, (String, String)> {
    let bad = |m: String| (code::BAD_REQUEST.to_string(), m);
    let doc = Json::parse(line).map_err(|e| bad(format!("invalid JSON: {e}")))?;
    let id = match doc.get("id") {
        Some(Json::Int(v)) => *v,
        None => 0,
        other => return Err(bad(format!("id must be an integer, got {other:?}"))),
    };
    let kind = match get_str(&doc, "type") {
        Some("solve") => {
            let (source, display) = if let Some(src) = get_str(&doc, "source") {
                (src.to_string(), "<request>".to_string())
            } else if let Some(name) = get_str(&doc, "example") {
                match aov_lang::corpus::source(name) {
                    Some(src) => (src.to_string(), format!("examples/{name}.aov")),
                    None => {
                        return Err(bad(format!(
                            "unknown example {name:?} (expected one of {})",
                            aov_lang::corpus::names().collect::<Vec<_>>().join(", ")
                        )))
                    }
                }
            } else {
                return Err(bad("solve needs a \"source\" or \"example\" field".into()));
            };
            let mut options = SolveOptions::default();
            if let Some(opts) = doc.get("options") {
                options.workers = get_u64(opts, "workers").unwrap_or(0) as usize;
                options.memoize = matches!(opts.get("memoize"), Some(Json::Bool(true)));
                options.deadline_ms = get_u64(opts, "deadline_ms");
                options.chaos = get_str(opts, "chaos").map(str::to_string);
                if let Some(budget) = opts.get("budget") {
                    options.budget = BudgetSpec {
                        pivots: get_u64(budget, "pivots"),
                        nodes: get_u64(budget, "nodes"),
                        ms: get_u64(budget, "ms"),
                    };
                }
            }
            RequestKind::Solve {
                source,
                display,
                options,
                watch: matches!(doc.get("watch"), Some(Json::Bool(true))),
            }
        }
        Some("stats") => RequestKind::Stats,
        Some("health") => RequestKind::Health,
        Some("shutdown") => RequestKind::Shutdown,
        Some("metrics") => RequestKind::Metrics,
        Some("watch") => RequestKind::Watch {
            session: get_u64(&doc, "session").unwrap_or(0),
            for_ms: get_u64(&doc, "for_ms"),
        },
        Some(other) => return Err(bad(format!("unknown request type {other:?}"))),
        None => return Err(bad("missing \"type\" field".into())),
    };
    Ok(Request { id, kind })
}

/// Builds a solve request frame (the client side of
/// [`parse_request`]).
#[must_use]
pub fn solve_frame(id: i64, source_or_example: (&str, bool), options: &SolveOptions) -> Json {
    let (text, is_example) = source_or_example;
    let mut budget = Json::obj();
    if let Some(p) = options.budget.pivots {
        budget = budget.field("pivots", p);
    }
    if let Some(n) = options.budget.nodes {
        budget = budget.field("nodes", n);
    }
    if let Some(ms) = options.budget.ms {
        budget = budget.field("ms", ms);
    }
    let mut opts = Json::obj()
        .field("workers", options.workers)
        .field("memoize", options.memoize)
        .field("budget", budget);
    if let Some(ms) = options.deadline_ms {
        opts = opts.field("deadline_ms", ms);
    }
    if let Some(chaos) = &options.chaos {
        opts = opts.field("chaos", chaos.as_str());
    }
    let frame = Json::obj()
        .field("schema", SCHEMA)
        .field("type", "solve")
        .field("id", id);
    let frame = if is_example {
        frame.field("example", text)
    } else {
        frame.field("source", text)
    };
    frame.field("options", opts)
}

/// A request frame with no body (`stats`, `health`, `shutdown`).
#[must_use]
pub fn plain_frame(kind: &str, id: i64) -> Json {
    Json::obj()
        .field("schema", SCHEMA)
        .field("type", kind)
        .field("id", id)
}

/// Builds an `error` response frame.
#[must_use]
pub fn error_frame(id: i64, code: &str, message: &str, retry_after_ms: Option<u64>) -> Json {
    let frame = Json::obj()
        .field("schema", SCHEMA)
        .field("type", "error")
        .field("id", id)
        .field("code", code)
        .field("message", message);
    match retry_after_ms {
        Some(ms) => frame.field("retry_after_ms", ms),
        None => frame,
    }
}

/// The memo-tier economics object embedded in `report` and `stats`
/// frames.
#[must_use]
pub fn memo_json(stats: &aov_lp::memo::MemoStats) -> Json {
    Json::obj()
        .field("entries", stats.entries)
        .field("hits", stats.hits)
        .field("misses", stats.misses)
        .field("evictions", stats.evictions)
}

/// Builds a `report` response frame around a pipeline report.
#[must_use]
pub fn report_frame(id: i64, session: u64, exit_code: i32, health: &str, report: Json) -> Json {
    Json::obj()
        .field("schema", SCHEMA)
        .field("type", "report")
        .field("id", id)
        .field("session", session)
        .field("exit_code", i64::from(exit_code))
        .field("health", health)
        .field("memo", memo_json(&aov_lp::memo::stats()))
        .field("report", report)
}

/// Builds a `watch` request frame (`session` 0 subscribes to every
/// session; `for_ms` bounds the stream).
#[must_use]
pub fn watch_frame(id: i64, session: u64, for_ms: Option<u64>) -> Json {
    let frame = plain_frame("watch", id).field("session", session);
    match for_ms {
        Some(ms) => frame.field("for_ms", ms),
        None => frame,
    }
}

/// Builds a `metrics` response frame around an `aov-svcmetrics/1`
/// document.
#[must_use]
pub fn metrics_frame(id: i64, doc: Json) -> Json {
    plain_frame("metrics", id).field("metrics", doc)
}

/// One flight-recorder event as wire JSON.
#[must_use]
pub fn event_json(event: &aov_trace::recorder::Event) -> Json {
    Json::obj()
        .field("seq", event.seq)
        .field("t_ns", event.t_ns)
        .field("thread", event.thread)
        .field("session", event.session)
        .field("kind", event.kind.name())
        .field("label", event.label.as_str())
        .field("a", event.a)
        .field("b", event.b)
}

/// Builds one `events` stream frame: a batch of recorder events plus
/// the honest count of events this subscriber lost to ring wraparound
/// since the previous batch.
#[must_use]
pub fn events_frame(id: i64, events: &[aov_trace::recorder::Event], dropped: u64) -> Json {
    plain_frame("events", id)
        .field("dropped", dropped)
        .field("events", events.iter().map(event_json).collect::<Vec<_>>())
}

/// Terminates a watch stream: why it ended plus delivery totals.
#[must_use]
pub fn watch_end_frame(id: i64, reason: &str, events_sent: u64, dropped_total: u64) -> Json {
    plain_frame("watch_end", id)
        .field("reason", reason)
        .field("events_sent", events_sent)
        .field("dropped_total", dropped_total)
}

/// Structural schema of a captured request/response transcript
/// (`{"schema":"aov-serve/1","type":"transcript","frames":[{dir,
/// frame}]}`), registered with `aov inspect --check`. Frames stay
/// [`Schema::Any`]: the transcript format outlives individual frame
/// shapes, and unknown frame fields must never fail a capture.
#[must_use]
pub fn transcript_schema() -> Schema {
    Schema::object([
        ("schema", Schema::Str, true),
        ("type", Schema::Str, true),
        (
            "frames",
            Schema::array(Schema::object([
                ("dir", Schema::Str, true),
                ("frame", Schema::Any, true),
            ])),
            true,
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_frame_roundtrips_through_parse() {
        let options = SolveOptions {
            workers: 3,
            memoize: true,
            budget: BudgetSpec {
                pivots: Some(500),
                nodes: None,
                ms: Some(2_000),
            },
            deadline_ms: Some(5_000),
            chaos: Some("site=serve.request,kind=error".to_string()),
        };
        let frame = solve_frame(42, ("example1", true), &options);
        let req = parse_request(&frame.to_compact()).expect("parses");
        assert_eq!(req.id, 42);
        let RequestKind::Solve {
            source,
            display,
            options,
            watch,
        } = req.kind
        else {
            panic!("not a solve");
        };
        assert!(!watch, "watch defaults to off");
        assert!(!source.is_empty());
        assert_eq!(display, "examples/example1.aov");
        assert_eq!(options.workers, 3);
        assert!(options.memoize);
        assert_eq!(options.budget.pivots, Some(500));
        assert_eq!(options.budget.nodes, None);
        assert_eq!(options.budget.ms, Some(2_000));
        assert_eq!(options.deadline_ms, Some(5_000));
        assert_eq!(
            options.chaos.as_deref(),
            Some("site=serve.request,kind=error")
        );
    }

    #[test]
    fn watch_and_metrics_frames_roundtrip() {
        let req = parse_request(&watch_frame(5, 42, Some(750)).to_compact()).expect("parses");
        assert_eq!(req.id, 5);
        let RequestKind::Watch { session, for_ms } = req.kind else {
            panic!("not a watch");
        };
        assert_eq!(session, 42);
        assert_eq!(for_ms, Some(750));
        // Bare watch: all sessions, unbounded.
        let req = parse_request(&plain_frame("watch", 6).to_compact()).expect("parses");
        let RequestKind::Watch { session, for_ms } = req.kind else {
            panic!("not a watch");
        };
        assert_eq!((session, for_ms), (0, None));
        let req = parse_request(&plain_frame("metrics", 7).to_compact()).expect("parses");
        assert!(matches!(req.kind, RequestKind::Metrics));
        // A solve frame can opt into watching its own session.
        let frame =
            solve_frame(8, ("example1", true), &SolveOptions::default()).field("watch", true);
        let req = parse_request(&frame.to_compact()).expect("parses");
        let RequestKind::Solve { watch, .. } = req.kind else {
            panic!("not a solve");
        };
        assert!(watch);
    }

    #[test]
    fn malformed_requests_reject_with_bad_request() {
        for line in [
            "not json",
            "{\"type\":\"unknown\",\"id\":1}",
            "{\"id\":1}",
            "{\"type\":\"solve\",\"id\":1}",
            "{\"type\":\"solve\",\"id\":1,\"example\":\"nope\"}",
        ] {
            let (code, msg) = parse_request(line).expect_err(line);
            assert_eq!(code, code::BAD_REQUEST, "{line}: {msg}");
        }
    }

    #[test]
    fn error_frames_carry_retry_hint_only_when_given() {
        let with = error_frame(1, code::OVERLOADED, "queue full", Some(25));
        assert_eq!(with.get("retry_after_ms"), Some(&Json::Int(25)));
        let without = error_frame(1, code::FAULT, "boom", None);
        assert_eq!(without.get("retry_after_ms"), None);
    }

    #[test]
    fn transcripts_validate_against_their_schema() {
        let doc = Json::obj()
            .field("schema", SCHEMA)
            .field("type", "transcript")
            .field(
                "frames",
                vec![Json::obj()
                    .field("dir", "send")
                    .field("frame", plain_frame("health", 1))],
            );
        aov_support::schema::validate(&doc, &transcript_schema()).expect("valid transcript");
    }
}
