//! The `aovd` daemon: a hermetic thread-pool TCP server speaking
//! [`aov-serve/1`](crate::protocol) — engineered for robustness under
//! hostile load rather than raw throughput.
//!
//! # Architecture
//!
//! One nonblocking accept loop hands each connection to a detached
//! reader thread. Readers parse frames, answer cheap requests
//! (`stats`, `health`, `shutdown`) inline, and push `solve` jobs onto
//! a **bounded queue** guarded by admission control; a fixed pool of
//! supervised worker threads pops jobs and runs them through the
//! existing [`Pipeline`]. Responses go out through a per-connection
//! writer mutex as single buffered writes — no torn frames, even when
//! several workers answer one client.
//!
//! # Admission control
//!
//! A request is rejected **before any solver work** when:
//!
//! * the queue is full, or the in-flight pivot pool (when configured)
//!   cannot cover the request's pivot budget — a structured
//!   `overloaded` error with a `retry_after_ms` hint;
//! * the daemon is draining — `shutting_down`;
//! * its source does not parse — `parse`, with the caret diagnostic.
//!
//! A request whose client deadline passes while queued is dropped at
//! dequeue (`deadline` error) without solving; the remaining deadline
//! is folded into the solve's wall-clock budget, so an admitted
//! request can never run past the moment its client stopped caring.
//!
//! # Supervision
//!
//! Every job runs under `catch_unwind`. A panicking or budget-tripped
//! solve degrades to the pipeline's ladder semantics (writing an
//! `aov-diag/1` bundle when a diag dir is configured) or, for faults
//! at the service layer (`serve.*` chaos probes), produces a
//! structured `fault` error plus a service bundle — the daemon keeps
//! serving either way. A panic escaping the per-job guard poisons the
//! worker loop; the supervising wrapper restarts it and counts the
//! restart in `stats`.
//!
//! # Sessions
//!
//! Each solve gets a process-unique session id, stamped into every
//! flight-recorder event it records (including fan-out workers, via
//! span-context adoption) — so one request's crash bundle carries only
//! its own timeline even though the ring is process-global. The id is
//! assigned at *admission* (not dequeue), so a `watch`ing connection
//! can tail a session's events while the solve is still queued.
//!
//! # Telemetry
//!
//! Every request is decomposed into phases (admission, queue-wait,
//! solve, serialize, end-to-end) recorded into lock-free latency
//! histograms, and its end-to-end latency lands under its verdict
//! (ok/degraded/overloaded/fault). The `metrics` verb returns the
//! whole plane as an `aov-svcmetrics/1` document; the `watch` verb
//! streams flight-recorder events live off a persistent ring cursor;
//! `--access-log` appends one `aov-access/1` line per request. See
//! [`crate::telemetry`].

use std::collections::VecDeque;
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use aov_engine::{diag, Health, Pipeline};
use aov_fault::chaos::{self, ChaosSpec, FaultKind};
use aov_support::{digest, Json, ToJson as _};
use aov_trace::recorder;

use crate::protocol::{self, code, RequestKind, SolveOptions};
use crate::telemetry::{self, AccessLog, AccessRecord, Phase, Telemetry, Verdict, WindowKind};

/// Pivot-pool charge for a request that declared no pivot budget.
/// Deliberately generous: unbudgeted requests are the minority tenant,
/// and overcharging them sheds load earlier, not later.
pub const DEFAULT_REQUEST_PIVOTS: u64 = 100_000;

/// How the daemon is configured at startup.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (the daemon prints the
    /// resolved address).
    pub addr: String,
    /// Solver worker threads popping the shared queue.
    pub workers: usize,
    /// Bounded request-queue depth; beyond it requests shed as
    /// `overloaded`.
    pub queue_limit: usize,
    /// Arms the shared cross-request memo tier.
    pub memo: bool,
    /// LRU bound for the memo tier (0 = unbounded).
    pub memo_capacity: usize,
    /// Total pivots admitted in flight at once (None = unlimited).
    /// Requests charge their declared pivot budget, or
    /// [`DEFAULT_REQUEST_PIVOTS`] when they declared none.
    pub pivot_pool: Option<u64>,
    /// Deadline applied to requests that declared none.
    pub default_deadline_ms: Option<u64>,
    /// Where crash-diagnostic bundles go (None = no bundles).
    pub diag_dir: Option<PathBuf>,
    /// The hint stamped into `overloaded` rejections.
    pub retry_after_ms: u64,
    /// Structured access log: one `aov-access/1` line per request
    /// (None = no log).
    pub access_log: Option<PathBuf>,
    /// Size-rotation threshold for the access log.
    pub access_log_max_bytes: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_limit: 16,
            memo: true,
            memo_capacity: 0,
            pivot_pool: None,
            default_deadline_ms: None,
            diag_dir: None,
            retry_after_ms: 25,
            access_log: None,
            access_log_max_bytes: telemetry::ACCESS_LOG_MAX_BYTES,
        }
    }
}

/// One admitted solve waiting for (or holding) a worker.
struct Job {
    id: i64,
    program: aov_ir::Program,
    display: String,
    options: SolveOptions,
    /// Pivots charged against the admission pool, released at
    /// completion.
    pool_charge: u64,
    deadline: Option<Instant>,
    out: Arc<Mutex<TcpStream>>,
    /// Session id assigned at admission (flight-recorder attribution).
    session: u64,
    /// FNV-1a digest of the program source (access-log identity).
    digest: String,
    /// When the request line arrived (end-to-end anchor).
    received_at: Instant,
    /// When admission pushed the job (queue-wait anchor).
    enqueued_at: Instant,
    /// Set once the final response frame for this job went out — the
    /// signal a same-connection `watch` stream keys its shutdown on.
    done: Arc<AtomicBool>,
}

struct Shared {
    cfg: ServerConfig,
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
    /// Set once: stop admitting, drain, exit.
    draining: AtomicBool,
    /// Remaining admission pool (i64::MAX when unconfigured).
    pivot_pool: AtomicI64,
    next_session: AtomicU64,
    served: AtomicU64,
    overloaded: AtomicU64,
    faults: AtomicU64,
    worker_restarts: AtomicU64,
    inflight: AtomicU64,
    /// Histograms, rate windows, worker states, uptime.
    telemetry: Telemetry,
    /// Structured per-request evidence, when configured.
    access_log: Option<AccessLog>,
}

impl Shared {
    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<Job>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Nanoseconds since `start`, saturating.
fn ns_since(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// The request's knobs as recorded in access-log lines.
fn knobs_json(options: &SolveOptions) -> Json {
    let mut budget = Json::obj();
    if let Some(p) = options.budget.pivots {
        budget = budget.field("pivots", p);
    }
    if let Some(n) = options.budget.nodes {
        budget = budget.field("nodes", n);
    }
    if let Some(ms) = options.budget.ms {
        budget = budget.field("ms", ms);
    }
    let mut knobs = Json::obj()
        .field("workers", options.workers)
        .field("memoize", options.memoize)
        .field("budget", budget);
    if let Some(ms) = options.deadline_ms {
        knobs = knobs.field("deadline_ms", ms);
    }
    if let Some(chaos) = &options.chaos {
        knobs = knobs.field("chaos", chaos.as_str());
    }
    knobs
}

/// Writes one frame as a single line. The whole line goes out in one
/// buffered write under the connection's writer lock — a concurrent
/// frame can interleave between lines, never inside one. Returns
/// whether the write reached the socket (a `watch` stream stops when
/// its client hangs up).
fn send(out: &Arc<Mutex<TcpStream>>, frame: &Json) -> bool {
    let mut line = frame.to_compact();
    line.push('\n');
    let mut stream = out.lock().unwrap_or_else(PoisonError::into_inner);
    stream.write_all(line.as_bytes()).is_ok() && stream.flush().is_ok()
}

/// A running daemon. Dropping the handle does **not** stop it; call
/// [`Server::shutdown`].
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    worker_handles: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, arms the memo tier per config, and spawns the accept
    /// loop plus the worker pool.
    ///
    /// # Errors
    ///
    /// Socket bind errors.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        if cfg.memo {
            aov_lp::memo::set_enabled(true);
            aov_lp::memo::set_capacity(cfg.memo_capacity);
        }
        let workers = cfg.workers.max(1);
        let access_log = match &cfg.access_log {
            Some(path) => Some(AccessLog::open(path, cfg.access_log_max_bytes)?),
            None => None,
        };
        let shared = Arc::new(Shared {
            pivot_pool: AtomicI64::new(
                cfg.pivot_pool
                    .map_or(i64::MAX, |p| i64::try_from(p).unwrap_or(i64::MAX)),
            ),
            cfg,
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            draining: AtomicBool::new(false),
            next_session: AtomicU64::new(1),
            served: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            worker_restarts: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            telemetry: Telemetry::new(workers),
            access_log,
        });
        let accept_handle = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, &listener))
        };
        let worker_handles = (0..workers)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || supervise_worker(&shared, idx))
            })
            .collect();
        Ok(Server {
            shared,
            addr,
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The resolved listen address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a drain was requested (SIGTERM, `shutdown` frame, or
    /// [`Server::shutdown`]).
    #[must_use]
    pub fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::Relaxed)
    }

    /// Requests a drain without blocking: stop accepting and admitting;
    /// queued and in-flight work still completes.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::Relaxed);
        self.shared.cv.notify_all();
    }

    /// Drains and blocks until every queued and in-flight request has
    /// been answered and all daemon threads exited.
    pub fn shutdown(mut self) {
        self.drain();
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        if shared.draining.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                std::thread::spawn(move || {
                    // A connection-level panic must never take the
                    // accept loop (or the process) with it.
                    let _ = catch_unwind(AssertUnwindSafe(|| serve_connection(&shared, stream)));
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Reads frames off one connection until EOF. Each line is processed
/// under its own `catch_unwind`, so a `serve.accept` panic injection
/// surfaces as a structured `fault` frame and the connection (and
/// daemon) keep going.
fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let out = Arc::new(Mutex::new(write_half));
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let result = catch_unwind(AssertUnwindSafe(|| process_line(shared, &line, &out)));
        if let Err(panic) = result {
            shared.faults.fetch_add(1, Ordering::Relaxed);
            let msg = panic_message(&panic);
            send(
                &out,
                &protocol::error_frame(0, code::FAULT, &format!("connection fault: {msg}"), None),
            );
        }
    }
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic".to_string()
    }
}

/// Parses and dispatches one request line (the admission path).
fn process_line(shared: &Arc<Shared>, line: &str, out: &Arc<Mutex<TcpStream>>) {
    // Chaos probe: the connection/admission layer. An injected error
    // rejects this frame; an injected panic is caught one level up.
    if let Err(e) = chaos::tick("serve.accept") {
        shared.faults.fetch_add(1, Ordering::Relaxed);
        send(
            out,
            &protocol::error_frame(0, code::FAULT, &e.to_string(), None),
        );
        return;
    }
    let request = match protocol::parse_request(line) {
        Ok(r) => r,
        Err((code, message)) => {
            send(out, &protocol::error_frame(0, &code, &message, None));
            return;
        }
    };
    let id = request.id;
    match request.kind {
        RequestKind::Health => {
            send(
                out,
                &protocol::plain_frame("health", id).field(
                    "status",
                    if shared.draining.load(Ordering::Relaxed) {
                        "draining"
                    } else {
                        "ok"
                    },
                ),
            );
        }
        RequestKind::Stats => {
            send(out, &stats_frame(shared, id));
        }
        RequestKind::Shutdown => {
            send(
                out,
                &protocol::plain_frame("shutdown", id).field("ok", true),
            );
            shared.draining.store(true, Ordering::Relaxed);
            shared.cv.notify_all();
        }
        RequestKind::Metrics => {
            send(out, &protocol::metrics_frame(id, svcmetrics_doc(shared)));
        }
        RequestKind::Watch { session, for_ms } => watch_stream(shared, id, session, for_ms, out),
        RequestKind::Solve {
            source,
            display,
            options,
            watch,
        } => admit_solve(shared, id, &source, display, options, watch, out),
    }
}

fn stats_frame(shared: &Shared, id: i64) -> Json {
    protocol::plain_frame("stats", id)
        .field("queue_depth", shared.lock_queue().len())
        .field("inflight", shared.inflight.load(Ordering::Relaxed))
        .field("served", shared.served.load(Ordering::Relaxed))
        .field("overloaded", shared.overloaded.load(Ordering::Relaxed))
        .field("faults", shared.faults.load(Ordering::Relaxed))
        .field(
            "worker_restarts",
            shared.worker_restarts.load(Ordering::Relaxed),
        )
        .field("draining", shared.draining.load(Ordering::Relaxed))
        .field("uptime_ms", shared.telemetry.uptime_ms())
        .field("workers", shared.telemetry.workers_json())
        .field("memo", protocol::memo_json(&aov_lp::memo::stats()))
}

/// Builds the `aov-svcmetrics/1` document the `metrics` verb returns.
fn svcmetrics_doc(shared: &Shared) -> Json {
    let t = &shared.telemetry;
    Json::obj()
        .field("schema", telemetry::SVCMETRICS_SCHEMA)
        .field("uptime_ms", t.uptime_ms())
        .field("draining", shared.draining.load(Ordering::Relaxed))
        .field("queue_depth", shared.lock_queue().len())
        .field("inflight", shared.inflight.load(Ordering::Relaxed))
        .field("served", shared.served.load(Ordering::Relaxed))
        .field("overloaded", shared.overloaded.load(Ordering::Relaxed))
        .field("faults", shared.faults.load(Ordering::Relaxed))
        .field(
            "worker_restarts",
            shared.worker_restarts.load(Ordering::Relaxed),
        )
        .field("workers", t.workers_json())
        .field("memo", protocol::memo_json(&aov_lp::memo::stats()))
        .field("windows", t.windows_json())
        .field("phases", t.phases_json())
        .field("verdicts", t.verdicts_json())
}

/// Streams flight-recorder events to this connection until the client
/// hangs up, the `for_ms` horizon passes, or the daemon drains. The
/// cursor survives ring wraparound; every batch carries the honest
/// count of events the subscriber lost to overwrites.
fn watch_stream(
    shared: &Arc<Shared>,
    id: i64,
    session: u64,
    for_ms: Option<u64>,
    out: &Arc<Mutex<TcpStream>>,
) {
    let mut cursor = recorder::Cursor::new();
    if !send(
        out,
        &protocol::plain_frame("watch", id)
            .field("session", session)
            .field("status", "ok"),
    ) {
        return;
    }
    let horizon = for_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let mut sent = 0u64;
    let mut dropped_total = 0u64;
    let reason = loop {
        let batch = cursor.poll();
        dropped_total += batch.dropped;
        let events: Vec<recorder::Event> = batch
            .events
            .into_iter()
            .filter(|e| session == 0 || e.session == session)
            .collect();
        if !events.is_empty() || batch.dropped > 0 {
            sent += events.len() as u64;
            if !send(out, &protocol::events_frame(id, &events, batch.dropped)) {
                return; // client gone; nobody left to tell why
            }
        }
        if shared.draining.load(Ordering::Relaxed) {
            break "draining";
        }
        if horizon.is_some_and(|h| Instant::now() >= h) {
            break "deadline";
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    send(
        out,
        &protocol::watch_end_frame(id, reason, sent, dropped_total),
    );
}

/// The follow-a-solve stream: after admission queued `session`, tail
/// its events on the admitting connection until the worker's final
/// frame went out (`done`), then flush and close the stream.
fn follow_session(
    id: i64,
    session: u64,
    done: &AtomicBool,
    mut cursor: recorder::Cursor,
    out: &Arc<Mutex<TcpStream>>,
) {
    let mut sent = 0u64;
    let mut dropped_total = 0u64;
    loop {
        // Read the flag before polling: events recorded before `done`
        // was set are visible to this (or the final) poll, so the
        // stream never ends with undelivered events still readable.
        let finished = done.load(Ordering::Acquire);
        let batch = cursor.poll();
        dropped_total += batch.dropped;
        let events: Vec<recorder::Event> = batch
            .events
            .into_iter()
            .filter(|e| e.session == session)
            .collect();
        if !events.is_empty() || batch.dropped > 0 {
            sent += events.len() as u64;
            if !send(out, &protocol::events_frame(id, &events, batch.dropped)) {
                return;
            }
        }
        if finished {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    send(
        out,
        &protocol::watch_end_frame(id, "done", sent, dropped_total),
    );
}

/// Telemetry for a request shed at admission: the whole request was
/// the admission walk, so that span doubles as its end-to-end
/// latency, attributed to the `overloaded` verdict for load-shedding
/// outcomes and `fault` for malformed/faulted ones.
fn record_shed(
    shared: &Shared,
    id: i64,
    outcome: &str,
    received_at: Instant,
    source: &str,
    display: &str,
    options: &SolveOptions,
) {
    let total_ns = ns_since(received_at);
    shared.telemetry.record_phase(Phase::Admission, total_ns);
    shared.telemetry.record_phase(Phase::EndToEnd, total_ns);
    let verdict = if matches!(
        outcome,
        code::OVERLOADED | code::DEADLINE | code::SHUTTING_DOWN
    ) {
        shared.telemetry.windows.bump(WindowKind::Shed, 1);
        Verdict::Overloaded
    } else {
        Verdict::Fault
    };
    shared.telemetry.record_verdict(verdict, total_ns);
    if let Some(log) = &shared.access_log {
        log.append(&AccessRecord {
            id,
            session: 0,
            program: display,
            digest: &digest::fnv1a_hex(source.as_bytes()),
            outcome,
            exit_code: None,
            queue_wait_ns: 0,
            solve_ns: 0,
            serialize_ns: 0,
            total_ns,
            knobs: knobs_json(options),
            memo_hits: 0,
            memo_misses: 0,
        });
    }
}

/// Rejects a solve at admission: the error frame, plus — when the
/// request asked to `watch` — the immediate `watch_end` the client is
/// owed so its stream terminates instead of waiting on a session that
/// will never run.
fn reject(out: &Arc<Mutex<TcpStream>>, id: i64, watch: bool, frame: &Json) {
    send(out, frame);
    if watch {
        send(out, &protocol::watch_end_frame(id, "rejected", 0, 0));
    }
}

/// The admission policy: shed load *before* any solver work.
fn admit_solve(
    shared: &Arc<Shared>,
    id: i64,
    source: &str,
    display: String,
    options: SolveOptions,
    watch: bool,
    out: &Arc<Mutex<TcpStream>>,
) {
    let received_at = Instant::now();
    shared.telemetry.windows.bump(WindowKind::Requests, 1);
    if shared.draining.load(Ordering::Relaxed) {
        record_shed(
            shared,
            id,
            code::SHUTTING_DOWN,
            received_at,
            source,
            &display,
            &options,
        );
        reject(
            out,
            id,
            watch,
            &protocol::error_frame(id, code::SHUTTING_DOWN, "daemon is draining", None),
        );
        return;
    }
    // Request-scoped chaos is restricted to the service layer: letting
    // a tenant arm engine sites would fault its neighbors' solves.
    if let Some(spec) = &options.chaos {
        match ChaosSpec::parse(spec) {
            Ok(parsed) if !parsed.site.starts_with("serve.") => {
                record_shed(
                    shared,
                    id,
                    code::BAD_REQUEST,
                    received_at,
                    source,
                    &display,
                    &options,
                );
                reject(
                    out,
                    id,
                    watch,
                    &protocol::error_frame(
                        id,
                        code::BAD_REQUEST,
                        &format!(
                            "chaos site {:?} is not request-scoped: only serve.* sites may be \
                             injected per request (arm engine sites via AOV_CHAOS on the daemon)",
                            parsed.site
                        ),
                        None,
                    ),
                );
                return;
            }
            Ok(_) => {}
            Err(e) => {
                record_shed(
                    shared,
                    id,
                    code::BAD_REQUEST,
                    received_at,
                    source,
                    &display,
                    &options,
                );
                reject(
                    out,
                    id,
                    watch,
                    &protocol::error_frame(id, code::BAD_REQUEST, &format!("chaos: {e}"), None),
                );
                return;
            }
        }
    }
    let program = match aov_lang::parse(source) {
        Ok(p) => p,
        Err(d) => {
            record_shed(
                shared,
                id,
                code::PARSE,
                received_at,
                source,
                &display,
                &options,
            );
            reject(
                out,
                id,
                watch,
                &protocol::error_frame(id, code::PARSE, &d.render(&display), None),
            );
            return;
        }
    };
    // Request-scoped serve.accept injection fires here, at the
    // admission layer. All three kinds are absorbed locally (the panic
    // under its own catch) so every injection leaves the same evidence:
    // a structured `fault` frame plus a service bundle.
    let accept_fault = match catch_unwind(AssertUnwindSafe(|| {
        fire_request_chaos(&options, "serve.accept")
    })) {
        Ok(Ok(())) => None,
        Ok(Err(msg)) => Some(msg),
        Err(panic) => Some(format!("admission panic: {}", panic_message(&panic))),
    };
    if let Some(msg) = accept_fault {
        shared.faults.fetch_add(1, Ordering::Relaxed);
        write_service_diag(shared, &program, &options, &msg);
        record_shed(
            shared,
            id,
            code::FAULT,
            received_at,
            source,
            &display,
            &options,
        );
        reject(
            out,
            id,
            watch,
            &protocol::error_frame(id, code::FAULT, &msg, None),
        );
        return;
    }
    let deadline = options
        .deadline_ms
        .or(shared.cfg.default_deadline_ms)
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    // Admission pool: charge the declared pivot budget up front.
    let pool_charge = options.budget.pivots.unwrap_or(DEFAULT_REQUEST_PIVOTS);
    let charge = i64::try_from(pool_charge).unwrap_or(i64::MAX);
    if shared.pivot_pool.fetch_sub(charge, Ordering::AcqRel) < charge {
        shared.pivot_pool.fetch_add(charge, Ordering::AcqRel);
        shared.overloaded.fetch_add(1, Ordering::Relaxed);
        record_shed(
            shared,
            id,
            code::OVERLOADED,
            received_at,
            source,
            &display,
            &options,
        );
        reject(
            out,
            id,
            watch,
            &protocol::error_frame(
                id,
                code::OVERLOADED,
                "in-flight pivot pool exhausted",
                Some(shared.cfg.retry_after_ms),
            ),
        );
        return;
    }
    // Session assigned here — before the queue — so a same-connection
    // watch can subscribe to it while the job is still waiting.
    let session = shared.next_session.fetch_add(1, Ordering::Relaxed);
    let done = Arc::new(AtomicBool::new(false));
    let job = Job {
        id,
        digest: digest::fnv1a_hex(source.as_bytes()),
        program,
        display,
        options,
        pool_charge,
        deadline,
        out: Arc::clone(out),
        session,
        received_at,
        enqueued_at: Instant::now(),
        done: Arc::clone(&done),
    };
    // The follow cursor must exist before a worker can pick the job
    // up, or the session's first events could be recorded unseen.
    let follow_cursor = watch.then(recorder::Cursor::new);
    {
        let mut queue = shared.lock_queue();
        if queue.len() >= shared.cfg.queue_limit {
            drop(queue);
            shared.pivot_pool.fetch_add(charge, Ordering::AcqRel);
            shared.overloaded.fetch_add(1, Ordering::Relaxed);
            record_shed(
                shared,
                id,
                code::OVERLOADED,
                received_at,
                source,
                &job.display,
                &job.options,
            );
            reject(
                out,
                id,
                watch,
                &protocol::error_frame(
                    id,
                    code::OVERLOADED,
                    "request queue full",
                    Some(shared.cfg.retry_after_ms),
                ),
            );
            return;
        }
        queue.push_back(job);
    }
    shared
        .telemetry
        .record_phase(Phase::Admission, ns_since(received_at));
    shared.cv.notify_one();
    if let Some(cursor) = follow_cursor {
        follow_session(id, session, &done, cursor, out);
    }
}

/// The worker supervisor: re-enters the worker loop whenever a panic
/// escapes the per-job isolation, so a poisoned worker restarts
/// instead of silently shrinking the pool.
fn supervise_worker(shared: &Arc<Shared>, idx: usize) {
    loop {
        match catch_unwind(AssertUnwindSafe(|| worker_loop(shared, idx))) {
            Ok(()) => {
                // Clean drain exit.
                shared
                    .telemetry
                    .set_worker_state(idx, telemetry::worker_state::IDLE);
                return;
            }
            Err(_) => {
                shared.worker_restarts.fetch_add(1, Ordering::Relaxed);
                shared
                    .telemetry
                    .set_worker_state(idx, telemetry::worker_state::RESTARTING);
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>, idx: usize) {
    loop {
        shared
            .telemetry
            .set_worker_state(idx, telemetry::worker_state::IDLE);
        let job = {
            let mut queue = shared.lock_queue();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.draining.load(Ordering::Relaxed) {
                    return;
                }
                let (guard, _) = shared
                    .cv
                    .wait_timeout(queue, Duration::from_millis(100))
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
            }
        };
        shared
            .telemetry
            .set_worker_state(idx, telemetry::worker_state::SOLVING);
        shared
            .telemetry
            .record_phase(Phase::QueueWait, ns_since(job.enqueued_at));
        shared.inflight.fetch_add(1, Ordering::Relaxed);
        let outcome = catch_unwind(AssertUnwindSafe(|| process_job(shared, &job)));
        if let Err(panic) = outcome {
            // A service-layer panic (e.g. injected at serve.request):
            // structured error to the client, service bundle to disk,
            // daemon lives on.
            shared.faults.fetch_add(1, Ordering::Relaxed);
            let msg = format!("worker panic: {}", panic_message(&panic));
            write_service_diag(shared, &job.program, &job.options, &msg);
            send(
                &job.out,
                &protocol::error_frame(job.id, code::FAULT, &msg, None),
            );
            finish_job_telemetry(shared, &job, code::FAULT, None, 0, 0, 0, 0, 0);
        }
        // Whatever the path, the job's final frame is out: release a
        // same-connection follow stream.
        job.done.store(true, Ordering::Release);
        shared.inflight.fetch_sub(1, Ordering::Relaxed);
        shared.served.fetch_add(1, Ordering::Relaxed);
        shared.pivot_pool.fetch_add(
            i64::try_from(job.pool_charge).unwrap_or(i64::MAX),
            Ordering::AcqRel,
        );
    }
}

/// End-of-job telemetry shared by every completion path: end-to-end
/// phase + verdict histograms, the shed window for drops, and the
/// access-log line.
#[allow(clippy::too_many_arguments)]
fn finish_job_telemetry(
    shared: &Shared,
    job: &Job,
    outcome: &str,
    exit_code: Option<i32>,
    queue_wait_ns: u64,
    solve_ns: u64,
    serialize_ns: u64,
    memo_hits: u64,
    memo_misses: u64,
) {
    let total_ns = ns_since(job.received_at);
    shared.telemetry.record_phase(Phase::EndToEnd, total_ns);
    let verdict = match outcome {
        "ok" => Verdict::Ok,
        "degraded" | "failed" => Verdict::Degraded,
        code::DEADLINE => {
            shared.telemetry.windows.bump(WindowKind::Shed, 1);
            Verdict::Overloaded
        }
        _ => Verdict::Fault,
    };
    shared.telemetry.record_verdict(verdict, total_ns);
    shared
        .telemetry
        .windows
        .bump(WindowKind::MemoHits, memo_hits);
    if let Some(log) = &shared.access_log {
        log.append(&AccessRecord {
            id: job.id,
            session: job.session,
            program: &job.display,
            digest: &job.digest,
            outcome,
            exit_code,
            queue_wait_ns,
            solve_ns,
            serialize_ns,
            total_ns,
            knobs: knobs_json(&job.options),
            memo_hits,
            memo_misses,
        });
    }
}

fn write_service_diag(
    shared: &Shared,
    program: &aov_ir::Program,
    options: &SolveOptions,
    message: &str,
) {
    if let Some(dir) = &shared.cfg.diag_dir {
        let _ = diag::write_service_bundle(
            dir,
            program,
            options.workers.max(1),
            options.budget,
            message,
            0, // the fault preempted session assignment; keep the tail
        );
    }
}

/// Fires a request-scoped `serve.*` chaos spec at `site`, mimicking
/// the global injector's fault kinds: `error`/`budget` reject the
/// request with a structured message, `panic` unwinds into the
/// supervised catch above.
fn fire_request_chaos(options: &SolveOptions, site: &str) -> Result<(), String> {
    let Some(spec) = &options.chaos else {
        return Ok(());
    };
    let Ok(parsed) = ChaosSpec::parse(spec) else {
        return Ok(()); // rejected at admission; unreachable here
    };
    if parsed.site != site {
        return Ok(());
    }
    match parsed.kind {
        FaultKind::Error => Err(format!("chaos error injected at {site}")),
        FaultKind::Budget => Err(format!("chaos budget trip injected at {site}")),
        FaultKind::Panic => panic!("chaos panic injected at {site}"),
    }
}

/// Runs one admitted job through the pipeline and answers the client.
fn process_job(shared: &Arc<Shared>, job: &Job) {
    let queue_wait_ns = ns_since(job.enqueued_at);
    // Drop-before-solving: a request whose client deadline passed while
    // it sat in the queue gets a deadline error, not a solve.
    let remaining = match job.deadline {
        Some(deadline) => {
            let now = Instant::now();
            if now >= deadline {
                send(
                    &job.out,
                    &protocol::error_frame(
                        job.id,
                        code::DEADLINE,
                        "deadline expired while queued",
                        None,
                    ),
                );
                finish_job_telemetry(shared, job, code::DEADLINE, None, queue_wait_ns, 0, 0, 0, 0);
                return;
            }
            Some(deadline.duration_since(now))
        }
        None => None,
    };
    // Chaos probes: the request pickup and memo-arming layers. Errors
    // reject with a structured frame + service bundle; panics unwind
    // into the worker's catch.
    for site in ["serve.request", "serve.memo"] {
        if site == "serve.memo" && !shared.cfg.memo {
            continue;
        }
        let fault = match chaos::tick(site) {
            Err(e) => Some(e.to_string()),
            Ok(()) => fire_request_chaos(&job.options, site).err(),
        };
        if let Some(msg) = fault {
            shared.faults.fetch_add(1, Ordering::Relaxed);
            write_service_diag(shared, &job.program, &job.options, &msg);
            send(
                &job.out,
                &protocol::error_frame(job.id, code::FAULT, &msg, None),
            );
            finish_job_telemetry(shared, job, code::FAULT, None, queue_wait_ns, 0, 0, 0, 0);
            return;
        }
    }
    // Fold the remaining client deadline into the solve's wall-clock
    // budget: the tighter constraint wins.
    let mut budget = job.options.budget;
    if let Some(remaining) = remaining {
        let remaining_ms = u64::try_from(remaining.as_millis())
            .unwrap_or(u64::MAX)
            .max(1);
        budget.ms = Some(budget.ms.map_or(remaining_ms, |ms| ms.min(remaining_ms)));
    }
    let session = job.session;
    let mut pipeline = Pipeline::new(job.program.clone())
        .workers(job.options.workers.max(1))
        .memoize(job.options.memoize && shared.cfg.memo)
        .budget(budget)
        .session(session);
    if let Some(dir) = &shared.cfg.diag_dir {
        pipeline = pipeline.diag_dir(dir.clone());
    }
    let memo_before = aov_lp::memo::stats();
    let solve_start = Instant::now();
    let result = pipeline.run();
    let solve_ns = ns_since(solve_start);
    shared.telemetry.record_phase(Phase::Solve, solve_ns);
    // Deltas of the shared counters: approximate under concurrent
    // workers, exact when serial — honest enough for per-request
    // memo economics.
    let memo_after = aov_lp::memo::stats();
    let memo_hits = memo_after.hits.saturating_sub(memo_before.hits);
    let memo_misses = memo_after.misses.saturating_sub(memo_before.misses);
    match result {
        Ok(report) => {
            // The CLI's exit-code contract, mirrored per frame.
            let exit_code = match report.health() {
                Health::Degraded | Health::Failed => 3,
                Health::Ok if report.equivalent == Some(false) => 1,
                Health::Ok => 0,
            };
            let serialize_start = Instant::now();
            send(
                &job.out,
                &protocol::report_frame(
                    job.id,
                    session,
                    exit_code,
                    report.health().name(),
                    report.to_json(),
                ),
            );
            let serialize_ns = ns_since(serialize_start);
            shared
                .telemetry
                .record_phase(Phase::Serialize, serialize_ns);
            finish_job_telemetry(
                shared,
                job,
                report.health().name(),
                Some(exit_code),
                queue_wait_ns,
                solve_ns,
                serialize_ns,
                memo_hits,
                memo_misses,
            );
        }
        Err(e) => {
            // Hard failure: the pipeline already wrote its bundle
            // (partial ladder included) when a diag dir is configured.
            shared.faults.fetch_add(1, Ordering::Relaxed);
            send(
                &job.out,
                &protocol::error_frame(job.id, code::FAULT, &format!("{}: {e}", job.display), None),
            );
            finish_job_telemetry(
                shared,
                job,
                code::FAULT,
                None,
                queue_wait_ns,
                solve_ns,
                0,
                memo_hits,
                memo_misses,
            );
        }
    }
}

/// Installs a SIGTERM handler that sets (and returns) a process-global
/// flag — the only async-signal-safe thing a handler may do. The
/// `aovd` main loop polls the flag and drains. On non-unix targets the
/// flag simply never fires.
pub fn sigterm_flag() -> &'static AtomicBool {
    static FLAG: AtomicBool = AtomicBool::new(false);
    #[cfg(unix)]
    {
        use std::sync::Once;
        static INSTALL: Once = Once::new();
        INSTALL.call_once(|| {
            extern "C" {
                fn signal(signum: i32, handler: usize) -> usize;
            }
            extern "C" fn on_sigterm(_: i32) {
                FLAG.store(true, Ordering::SeqCst);
            }
            const SIGTERM: i32 = 15;
            // SAFETY: installing a handler that only stores to a
            // static atomic is async-signal-safe; the cast matches the
            // C `void (*)(int)` ABI.
            unsafe {
                signal(SIGTERM, on_sigterm as *const () as usize);
            }
        });
    }
    &FLAG
}
