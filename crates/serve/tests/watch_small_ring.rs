//! Watch streaming pinned to the smallest flight-recorder ring (64
//! slots, what `--recorder-slots 64` gives the binary). The serve
//! suite's other tests run at the default 4096 slots where a short
//! campaign never wraps; this binary must be its own process because
//! the ring's capacity is fixed at first use. It drives concurrent
//! solves through a followed session and checks the stream survives
//! wraparound: events arrive in order, the terminal report still
//! lands, and the accounting (`events_sent` + honest drop counts)
//! stays consistent while the ring is overwritten underneath the
//! cursor.

use aov_serve::client;
use aov_serve::protocol::{self, SolveOptions};
use aov_serve::server::{Server, ServerConfig};
use aov_support::Json;
use aov_trace::recorder;

fn jint(j: &Json, key: &str) -> i64 {
    match j.get(key) {
        Some(Json::Int(n)) => *n,
        other => panic!("{key}: {other:?}"),
    }
}

#[test]
fn followed_solve_streams_in_order_across_ring_wraparound() {
    assert!(
        recorder::set_slots(64),
        "capacity request must precede first use"
    );
    assert_eq!(recorder::slots(), 64);

    let server = Server::start(ServerConfig {
        workers: 2,
        queue_limit: 16,
        memo: false, // cold solves: every request records real work
        ..ServerConfig::default()
    })
    .expect("daemon starts");
    let addr = server.addr().to_string();
    let head_before = recorder::events_recorded();

    // Churn the ring from neighbor sessions while one solve is
    // followed: the followed session's events share the 64 slots with
    // everyone else's, so the cursor must ride through overwrites.
    let churn = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let cfg = client::ClientConfig {
                addr,
                retries: 20,
                base_ms: 1,
                cap_ms: 50,
                seed: 9,
            };
            for i in 0..4 {
                let frame =
                    protocol::solve_frame(100 + i, ("example1", true), &SolveOptions::default());
                client::call(&cfg, &frame, None).expect("churn solve completes");
            }
        })
    };

    let request =
        protocol::solve_frame(7, ("example1", true), &SolveOptions::default()).field("watch", true);
    let mut event_frames = 0u64;
    let mut events_seen = 0i64;
    let mut dropped_in_batches = 0i64;
    let mut last_seq = -1i64;
    let mut watch_end: Option<Json> = None;
    let terminal = client::stream(&addr, &request, |frame| match frame.get("type") {
        Some(Json::Str(t)) if t == "events" => {
            event_frames += 1;
            dropped_in_batches += jint(frame, "dropped");
            let Some(Json::Arr(events)) = frame.get("events") else {
                panic!("events frame without events array");
            };
            for e in events {
                let seq = jint(e, "seq");
                assert!(
                    seq > last_seq,
                    "stream went backwards: {seq} after {last_seq}"
                );
                last_seq = seq;
                events_seen += 1;
                // Session filtering must hold even while the ring is
                // overwritten by the churn sessions.
                assert!(jint(e, "session") > 0, "unattributed event in a follow");
            }
        }
        Some(Json::Str(t)) if t == "watch_end" => watch_end = Some(frame.clone()),
        _ => {}
    })
    .expect("followed solve streams to completion");
    churn.join().expect("churn clients finish");

    assert_eq!(
        terminal.get("type"),
        Some(&Json::Str("report".to_string())),
        "terminal frame is the solve report: {terminal:?}"
    );
    assert!(
        event_frames >= 1,
        "a followed solve streams at least one batch"
    );
    assert!(
        events_seen >= 1,
        "the followed session's events reach the client"
    );
    let end = watch_end.expect("stream ends with watch_end");
    assert_eq!(end.get("reason"), Some(&Json::Str("done".to_string())));
    assert_eq!(
        jint(&end, "events_sent"),
        events_seen,
        "events_sent accounts exactly for delivered events"
    );
    assert_eq!(
        jint(&end, "dropped_total"),
        dropped_in_batches,
        "dropped_total sums the per-batch honest drop counts"
    );

    // The campaign provably wrapped the 64-slot ring.
    let recorded = recorder::events_recorded() - head_before;
    assert!(
        recorded > 64,
        "campaign recorded {recorded} events, ring holds 64"
    );
    server.shutdown();
}
