//! Daemon-served determinism: for every corpus program, a report
//! served by `aovd` over the wire must be byte-identical to the report
//! the CLI path (`aov run`, i.e. a direct [`Pipeline`] run) produces —
//! once run-local noise (wall-clock micros, allocator columns,
//! watermark counters) is normalized away. The service layer may add
//! framing; it must never perturb a solve.

use aov_engine::{BudgetSpec, Pipeline};
use aov_serve::client::{self, ClientConfig};
use aov_serve::protocol::{self, SolveOptions};
use aov_serve::server::{Server, ServerConfig};
use aov_support::{Json, ToJson as _};

/// Same normalization as `tests/lang_roundtrip.rs`.
fn normalize(j: &Json) -> Json {
    match j {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .map(|(k, v)| match k.as_str() {
                    "micros" | "total_micros" => (k.clone(), Json::Int(0)),
                    "alloc" => (k.clone(), Json::Null),
                    "counters" => (k.clone(), drop_watermarks(v)),
                    _ => (k.clone(), normalize(v)),
                })
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(normalize).collect()),
        other => other.clone(),
    }
}

fn drop_watermarks(counters: &Json) -> Json {
    let Json::Arr(items) = counters else {
        return normalize(counters);
    };
    Json::Arr(
        items
            .iter()
            .filter(|item| match item {
                Json::Obj(fields) => !fields.iter().any(|(k, v)| {
                    k == "name" && matches!(v, Json::Str(s) if s.ends_with("_bits_max"))
                }),
                _ => true,
            })
            .map(normalize)
            .collect(),
    )
}

/// `example3` costs over a minute at full depth; the same deterministic
/// pivot budget `tests/lang_roundtrip.rs` uses keeps the parity check
/// fast (both paths degrade identically).
fn budget_for(name: &str) -> Option<u64> {
    (name == "example3").then_some(1_000)
}

#[test]
fn daemon_served_reports_match_the_cli_path_byte_for_byte() {
    // Memoization stays off on both paths: the tier is semantically
    // transparent but its counters are not, and this test is about
    // byte-level parity.
    let server = Server::start(ServerConfig {
        workers: 1,
        memo: false,
        ..ServerConfig::default()
    })
    .expect("daemon starts");
    let addr = server.addr().to_string();
    let cfg = ClientConfig {
        addr,
        retries: 2,
        base_ms: 1,
        cap_ms: 10,
        seed: 3,
    };

    for (i, name) in aov_lang::corpus::names().enumerate() {
        let budget = BudgetSpec {
            pivots: budget_for(name),
            nodes: None,
            ms: None,
        };
        // The CLI path: parse + direct pipeline run in this process.
        let program =
            aov_lang::parse(aov_lang::corpus::source(name).expect("corpus source")).expect(name);
        let direct = Pipeline::new(program)
            .budget(budget)
            .run()
            .unwrap_or_else(|e| panic!("{name}: direct run failed: {e}"));
        let direct_text = normalize(&direct.to_json()).to_pretty();

        // The served path: same program, same budget, over the wire.
        let options = SolveOptions {
            budget,
            ..SolveOptions::default()
        };
        let frame = client::call(
            &cfg,
            &protocol::solve_frame(i as i64, (name, true), &options),
            None,
        )
        .expect("daemon answers")
        .frame;
        assert_eq!(
            frame.get("type"),
            Some(&Json::Str("report".to_string())),
            "{name}: {frame:?}"
        );
        let served_text = normalize(frame.get("report").expect("report body")).to_pretty();
        assert_eq!(
            served_text, direct_text,
            "{name}: served report differs from the CLI path"
        );
        // The frame's verdict mirrors the CLI exit-code contract.
        let expected_exit = match direct.health().name() {
            "ok" if direct.equivalent == Some(false) => 1,
            "ok" => 0,
            _ => 3,
        };
        assert_eq!(
            frame.get("exit_code"),
            Some(&Json::Int(expected_exit)),
            "{name}"
        );
    }
    server.shutdown();
}
