//! The serve-layer chaos fault matrix.
//!
//! Every `serve.*` probe site crossed with every fault kind must
//! produce the same evidence: a clean, structured `fault` error frame
//! to the client, a valid `aov-diag/1` service bundle on disk, and a
//! daemon that keeps serving — the next healthy request's report must
//! be bit-identical to the pre-fault baseline once run-local noise
//! (wall-clock micros, allocator columns, watermark counters) is
//! normalized away.

use std::path::{Path, PathBuf};

use aov_serve::client::{self, ClientConfig};
use aov_serve::protocol::{self, SolveOptions};
use aov_serve::server::{Server, ServerConfig};
use aov_support::Json;

/// Same normalization as `tests/lang_roundtrip.rs`: zero the clocks,
/// drop allocator snapshots and `*_bits_max` watermark counters.
fn normalize(j: &Json) -> Json {
    match j {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .map(|(k, v)| match k.as_str() {
                    "micros" | "total_micros" => (k.clone(), Json::Int(0)),
                    "alloc" => (k.clone(), Json::Null),
                    "counters" => (k.clone(), drop_watermarks(v)),
                    _ => (k.clone(), normalize(v)),
                })
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(normalize).collect()),
        other => other.clone(),
    }
}

fn drop_watermarks(counters: &Json) -> Json {
    let Json::Arr(items) = counters else {
        return normalize(counters);
    };
    Json::Arr(
        items
            .iter()
            .filter(|item| match item {
                Json::Obj(fields) => !fields.iter().any(|(k, v)| {
                    k == "name" && matches!(v, Json::Str(s) if s.ends_with("_bits_max"))
                }),
                _ => true,
            })
            .map(normalize)
            .collect(),
    )
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aov-serve-matrix-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn call_one(addr: &str, frame: &Json) -> Json {
    let cfg = ClientConfig {
        addr: addr.to_string(),
        retries: 2,
        base_ms: 1,
        cap_ms: 10,
        seed: 7,
    };
    client::call(&cfg, frame, None)
        .expect("daemon answers")
        .frame
}

fn healthy_report_text(addr: &str) -> String {
    let frame = call_one(
        addr,
        &protocol::solve_frame(1, ("example1", true), &SolveOptions::default()),
    );
    assert_eq!(
        frame.get("type"),
        Some(&Json::Str("report".to_string())),
        "healthy solve must report: {frame:?}"
    );
    assert_eq!(frame.get("exit_code"), Some(&Json::Int(0)));
    normalize(frame.get("report").expect("report body")).to_pretty()
}

fn bundle_paths(dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    paths
}

#[test]
fn every_site_kind_injection_leaves_uniform_evidence() {
    let diag = fresh_dir("fault");
    let server = Server::start(ServerConfig {
        workers: 1,
        diag_dir: Some(diag.clone()),
        ..ServerConfig::default()
    })
    .expect("daemon starts");
    let addr = server.addr().to_string();

    // First solve populates the shared memo tier (cold: misses); every
    // later identical solve runs warm (all hits), so the steady-state
    // baseline — memo economics included — is taken from the second.
    let _warmup = healthy_report_text(&addr);
    let baseline = healthy_report_text(&addr);
    let schema = aov_engine::diag::diag_schema();
    let mut bundles_before = bundle_paths(&diag).len();
    for site in ["serve.accept", "serve.request", "serve.memo"] {
        for kind in ["error", "panic", "budget"] {
            let tag = format!("{site}/{kind}");
            let options = SolveOptions {
                chaos: Some(format!("site={site},kind={kind}")),
                ..SolveOptions::default()
            };
            let frame = call_one(
                &addr,
                &protocol::solve_frame(2, ("example1", true), &options),
            );
            // Leg 1: a clean structured error, never a dropped
            // connection or a torn frame.
            assert_eq!(
                frame.get("type"),
                Some(&Json::Str("error".to_string())),
                "{tag}: {frame:?}"
            );
            assert_eq!(
                frame.get("code"),
                Some(&Json::Str(protocol::code::FAULT.to_string())),
                "{tag}: {frame:?}"
            );
            let Some(Json::Str(message)) = frame.get("message") else {
                panic!("{tag}: error frame without message: {frame:?}");
            };
            assert!(!message.is_empty(), "{tag}");
            // Leg 2: exactly one new service bundle, valid aov-diag/1.
            let bundles = bundle_paths(&diag);
            assert_eq!(
                bundles.len(),
                bundles_before + 1,
                "{tag}: expected one new bundle"
            );
            bundles_before = bundles.len();
            let newest = bundles.last().unwrap();
            let text = std::fs::read_to_string(newest).expect("bundle readable");
            let doc = Json::parse(text.trim()).expect("bundle parses");
            aov_support::schema::validate(&doc, &schema)
                .unwrap_or_else(|e| panic!("{tag}: bundle invalid: {e:?}"));
            assert_eq!(
                doc.get("health"),
                Some(&Json::Str("failed".to_string())),
                "{tag}"
            );
            // Leg 3: the daemon keeps serving, bit-identically.
            assert_eq!(
                healthy_report_text(&addr),
                baseline,
                "{tag}: post-fault report drifted from the baseline"
            );
        }
    }

    // The ledger agrees: one fault per cell, nothing leaked.
    let stats = call_one(&addr, &protocol::plain_frame("stats", 99));
    assert_eq!(stats.get("faults"), Some(&Json::Int(9)), "{stats:?}");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&diag);
}

#[test]
fn engine_sites_are_rejected_as_request_scoped_chaos() {
    let server = Server::start(ServerConfig::default()).expect("daemon starts");
    let addr = server.addr().to_string();
    let options = SolveOptions {
        chaos: Some("site=lp.simplex,kind=panic".to_string()),
        ..SolveOptions::default()
    };
    let frame = call_one(
        &addr,
        &protocol::solve_frame(5, ("example1", true), &options),
    );
    assert_eq!(frame.get("type"), Some(&Json::Str("error".to_string())));
    assert_eq!(
        frame.get("code"),
        Some(&Json::Str(protocol::code::BAD_REQUEST.to_string())),
        "{frame:?}"
    );
    server.shutdown();
}
