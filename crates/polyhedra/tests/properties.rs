//! Property tests for the polyhedral substrate: the double-description
//! generators, Fourier–Motzkin projection and redundancy removal agree
//! with brute-force ground truth on random systems.

use aov_linalg::{AffineExpr, QVector};
use aov_numeric::Rational;
use aov_polyhedra::{Constraint, Polyhedron};
use aov_support::{props, Rng};

/// A random polytope: a box `[-4, 4]^d` intersected with random cuts
/// (always bounded, possibly empty).
fn boxed_polytope(g: &mut Rng, d: usize) -> Polyhedron {
    let mut cs = Vec::new();
    for k in 0..d {
        let mut lo = vec![0i64; d];
        lo[k] = 1;
        cs.push(Constraint::ge0(AffineExpr::from_i64(&lo, 4)));
        let mut hi = vec![0i64; d];
        hi[k] = -1;
        cs.push(Constraint::ge0(AffineExpr::from_i64(&hi, 4)));
    }
    for _ in 0..g.usize_in(0, 4) {
        let coeffs = g.vec_i64(-3, 3, d);
        let c = g.i64_in(-5, 6);
        cs.push(Constraint::ge0(AffineExpr::from_i64(&coeffs, c)));
    }
    Polyhedron::from_constraints(d, cs)
}

fn integer_points(p: &Polyhedron, d: usize) -> Vec<Vec<i64>> {
    let mut out = Vec::new();
    let mut cur = vec![-4i64; d];
    loop {
        if p.contains(&QVector::from_i64(&cur)) {
            out.push(cur.clone());
        }
        let mut k = d;
        loop {
            if k == 0 {
                return out;
            }
            k -= 1;
            if cur[k] < 4 {
                cur[k] += 1;
                for c in cur.iter_mut().skip(k + 1) {
                    *c = -4;
                }
                break;
            }
        }
    }
}

props! {
    #![cases = 48, seed = 0xDD17_0B2E]

    /// Every DD vertex satisfies all constraints, and emptiness agrees
    /// with the LP test.
    fn dd_vertices_feasible_and_emptiness_agrees(g) {
        let p = boxed_polytope(g, 2);
        let gens = p.generators();
        assert!(gens.is_bounded(), "boxed polytopes have no rays");
        assert_eq!(gens.is_empty(), p.is_empty());
        for v in &gens.vertices {
            assert!(p.contains(v), "vertex {v:?} infeasible");
        }
    }

    /// Every integer point is a convex combination certificate: it
    /// cannot be outside the bounding box of the vertices.
    fn dd_vertices_bound_integer_points(g) {
        let p = boxed_polytope(g, 2);
        let gens = p.generators();
        for pt in integer_points(&p, 2) {
            for k in 0..2 {
                let x = Rational::from(pt[k]);
                let min = gens.vertices.iter().map(|v| v[k].clone()).min();
                let max = gens.vertices.iter().map(|v| v[k].clone()).max();
                assert!(min.clone().is_some_and(|m| m <= x));
                assert!(max.clone().is_some_and(|m| m >= x));
            }
        }
    }

    /// Fourier–Motzkin projection = shadow of the integer points
    /// (soundness and, over the rationals, completeness at integer
    /// shadows).
    fn fm_projection_is_shadow(g) {
        let p = boxed_polytope(g, 2);
        let proj = p.eliminate_dim(1);
        let pts = integer_points(&p, 2);
        // Soundness: every point's shadow is in the projection.
        for pt in &pts {
            assert!(proj.contains(&QVector::from_i64(&[pt[0]])));
        }
        // Exactness over Q: a projected integer x must extend to some
        // rational y — check via emptiness of the fiber.
        for x in -4i64..=4 {
            if proj.contains(&QVector::from_i64(&[x])) {
                let mut fiber = p.clone();
                fiber.add_constraint(Constraint::eq0(
                    &AffineExpr::var(2, 0) - &AffineExpr::constant(2, x.into()),
                ));
                assert!(!fiber.is_empty(), "x = {x} has empty fiber");
            }
        }
    }

    /// Redundancy removal preserves the set exactly.
    fn remove_redundant_preserves_set(g) {
        let p = boxed_polytope(g, 2);
        let r = p.remove_redundant();
        assert!(r.constraints().len() <= p.constraints().len());
        for pt in integer_points(&p, 2) {
            assert!(r.contains(&QVector::from_i64(&pt)));
        }
        for x in -5i64..=5 {
            for y in -5i64..=5 {
                let q = QVector::from_i64(&[x, y]);
                assert_eq!(p.contains(&q), r.contains(&q), "at ({x}, {y})");
            }
        }
    }

    /// implies_nonneg agrees with evaluating at all integer points for
    /// full-dimensional sets (rational minima at vertices are rational).
    fn implies_nonneg_sound(g) {
        let p = boxed_polytope(g, 2);
        let coeffs = g.vec_i64(-3, 3, 2);
        let c = g.i64_in(-6, 6);
        let e = AffineExpr::from_i64(&coeffs, c);
        if p.implies_nonneg(&e) {
            for pt in integer_points(&p, 2) {
                assert!(
                    !e.eval_i64(&pt).is_negative(),
                    "claimed implied but negative at {pt:?}"
                );
            }
        } else {
            // There is a rational witness; confirm via LP minimum.
            let min = p.minimum(&e).expect("bounded");
            assert!(min.is_negative());
        }
    }

    /// Intersection is commutative and monotone.
    fn intersection_properties(g) {
        let a = boxed_polytope(g, 2);
        let b = boxed_polytope(g, 2);
        let ab = a.intersect(&b);
        let ba = b.intersect(&a);
        for x in -5i64..=5 {
            for y in -5i64..=5 {
                let q = QVector::from_i64(&[x, y]);
                let v = ab.contains(&q);
                assert_eq!(v, ba.contains(&q));
                assert_eq!(v, a.contains(&q) && b.contains(&q));
            }
        }
        assert!(ab.is_subset_of(&a));
        assert!(ab.is_subset_of(&b));
    }
}
