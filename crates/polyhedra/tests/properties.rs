//! Property tests for the polyhedral substrate: the double-description
//! generators, Fourier–Motzkin projection and redundancy removal agree
//! with brute-force ground truth on random systems.

use aov_linalg::{AffineExpr, QVector};
use aov_numeric::Rational;
use aov_polyhedra::{Constraint, Polyhedron};
use proptest::prelude::*;

/// A random polytope: a box `[-4, 4]^d` intersected with random cuts
/// (always bounded, possibly empty).
fn boxed_polytope(d: usize) -> impl Strategy<Value = Polyhedron> {
    proptest::collection::vec(
        (proptest::collection::vec(-3i64..=3, d), -5i64..=6),
        0..=4,
    )
    .prop_map(move |cuts| {
        let mut cs = Vec::new();
        for k in 0..d {
            let mut lo = vec![0i64; d];
            lo[k] = 1;
            cs.push(Constraint::ge0(AffineExpr::from_i64(&lo, 4)));
            let mut hi = vec![0i64; d];
            hi[k] = -1;
            cs.push(Constraint::ge0(AffineExpr::from_i64(&hi, 4)));
        }
        for (coeffs, c) in cuts {
            cs.push(Constraint::ge0(AffineExpr::from_i64(&coeffs, c)));
        }
        Polyhedron::from_constraints(d, cs)
    })
}

fn integer_points(p: &Polyhedron, d: usize) -> Vec<Vec<i64>> {
    let mut out = Vec::new();
    let mut cur = vec![-4i64; d];
    loop {
        if p.contains(&QVector::from_i64(&cur)) {
            out.push(cur.clone());
        }
        let mut k = d;
        loop {
            if k == 0 {
                return out;
            }
            k -= 1;
            if cur[k] < 4 {
                cur[k] += 1;
                for c in cur.iter_mut().skip(k + 1) {
                    *c = -4;
                }
                break;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every DD vertex satisfies all constraints, and emptiness agrees
    /// with the LP test.
    #[test]
    fn dd_vertices_feasible_and_emptiness_agrees(p in boxed_polytope(2)) {
        let gens = p.generators();
        prop_assert!(gens.is_bounded(), "boxed polytopes have no rays");
        prop_assert_eq!(gens.is_empty(), p.is_empty());
        for v in &gens.vertices {
            prop_assert!(p.contains(v), "vertex {v:?} infeasible");
        }
    }

    /// Every integer point is a convex combination certificate: it
    /// cannot be outside the bounding box of the vertices.
    #[test]
    fn dd_vertices_bound_integer_points(p in boxed_polytope(2)) {
        let gens = p.generators();
        for pt in integer_points(&p, 2) {
            for k in 0..2 {
                let x = Rational::from(pt[k]);
                let min = gens.vertices.iter().map(|v| v[k].clone()).min();
                let max = gens.vertices.iter().map(|v| v[k].clone()).max();
                prop_assert!(min.clone().is_some_and(|m| m <= x));
                prop_assert!(max.clone().is_some_and(|m| m >= x));
            }
        }
    }

    /// Fourier–Motzkin projection = shadow of the integer points
    /// (soundness and, over the rationals, completeness at integer
    /// shadows).
    #[test]
    fn fm_projection_is_shadow(p in boxed_polytope(2)) {
        let proj = p.eliminate_dim(1);
        let pts = integer_points(&p, 2);
        // Soundness: every point's shadow is in the projection.
        for pt in &pts {
            prop_assert!(proj.contains(&QVector::from_i64(&[pt[0]])));
        }
        // Exactness over Q: a projected integer x must extend to some
        // rational y — check via emptiness of the fiber.
        for x in -4i64..=4 {
            if proj.contains(&QVector::from_i64(&[x])) {
                let mut fiber = p.clone();
                fiber.add_constraint(Constraint::eq0(
                    &AffineExpr::var(2, 0) - &AffineExpr::constant(2, x.into()),
                ));
                prop_assert!(!fiber.is_empty(), "x = {x} has empty fiber");
            }
        }
    }

    /// Redundancy removal preserves the set exactly.
    #[test]
    fn remove_redundant_preserves_set(p in boxed_polytope(2)) {
        let r = p.remove_redundant();
        prop_assert!(r.constraints().len() <= p.constraints().len());
        for pt in integer_points(&p, 2) {
            prop_assert!(r.contains(&QVector::from_i64(&pt)));
        }
        for x in -5i64..=5 {
            for y in -5i64..=5 {
                let q = QVector::from_i64(&[x, y]);
                prop_assert_eq!(p.contains(&q), r.contains(&q), "at ({}, {})", x, y);
            }
        }
    }

    /// implies_nonneg agrees with evaluating at all integer points for
    /// full-dimensional sets (rational minima at vertices are rational).
    #[test]
    fn implies_nonneg_sound(
        p in boxed_polytope(2),
        coeffs in proptest::collection::vec(-3i64..=3, 2),
        c in -6i64..=6,
    ) {
        let e = AffineExpr::from_i64(&coeffs, c);
        if p.implies_nonneg(&e) {
            for pt in integer_points(&p, 2) {
                prop_assert!(
                    !e.eval_i64(&pt).is_negative(),
                    "claimed implied but negative at {pt:?}"
                );
            }
        } else {
            // There is a rational witness; confirm via LP minimum.
            let min = p.minimum(&e).expect("bounded");
            prop_assert!(min.is_negative());
        }
    }

    /// Intersection is commutative and monotone.
    #[test]
    fn intersection_properties(a in boxed_polytope(2), b in boxed_polytope(2)) {
        let ab = a.intersect(&b);
        let ba = b.intersect(&a);
        for x in -5i64..=5 {
            for y in -5i64..=5 {
                let q = QVector::from_i64(&[x, y]);
                let v = ab.contains(&q);
                prop_assert_eq!(v, ba.contains(&q));
                prop_assert_eq!(v, a.contains(&q) && b.contains(&q));
            }
        }
        prop_assert!(ab.is_subset_of(&a));
        prop_assert!(ab.is_subset_of(&b));
    }
}
