//! Chernikova's double-description method.
//!
//! Computes the generator representation (vertices, rays, lines) of a
//! polyhedron given by constraints — the decomposition `D = P + C` of the
//! paper's Theorem 1. The polyhedron is homogenized into a cone over
//! `(λ, x)` with `λ >= 0` processed first; bidirectional rays (lines) are
//! kept separately and "consumed" by the first constraint they are not
//! orthogonal to, exactly as in Le Verge's presentation of Chernikova's
//! algorithm.

use crate::{ConstraintKind, Polyhedron};
use aov_linalg::QVector;
use aov_numeric::Rational;

/// Generators of a polyhedron: `conv(vertices) + cone(rays) + span(lines)`.
///
/// An empty `vertices` list means the polyhedron is empty (a nonempty
/// polyhedron always has at least one generator with positive
/// homogenizing coordinate).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GeneratorSet {
    /// Extreme points (dimension = ambient dimension).
    pub vertices: Vec<QVector>,
    /// Extreme unidirectional rays (primitive integer directions).
    pub rays: Vec<QVector>,
    /// Basis of the lineality space (primitive integer directions).
    pub lines: Vec<QVector>,
}

impl GeneratorSet {
    /// Whether the polyhedron is empty.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Whether the polyhedron is a bounded polytope.
    pub fn is_bounded(&self) -> bool {
        self.rays.is_empty() && self.lines.is_empty()
    }
}

/// One generator of the homogenized cone plus its tight set over the
/// inequality constraints processed so far.
#[derive(Clone, Debug)]
struct Gen {
    /// Homogenized coordinates `(λ, x_0, …, x_{d-1})`, primitive integer.
    v: QVector,
    /// `tight[k]` iff inequality `k` holds with equality on this ray.
    tight: Vec<bool>,
}

/// Scales to a primitive integer vector (direction preserved).
fn normalize(v: &QVector) -> QVector {
    use aov_numeric::BigInt;
    let mut l = BigInt::one();
    for c in v.iter() {
        let d = c.denom();
        let g = aov_numeric::gcd_big(&l, d);
        l = &l * &(d / &g);
    }
    let ints: Vec<BigInt> = v
        .iter()
        .map(|c| {
            (c * &Rational::from(l.clone()))
                .to_integer()
                .expect("cleared")
        })
        .collect();
    let mut g = BigInt::zero();
    for x in &ints {
        g = aov_numeric::gcd_big(&g, x);
    }
    if g.is_zero() {
        return v.clone();
    }
    ints.into_iter().map(|x| Rational::from(&x / &g)).collect()
}

/// Computes the generators of `p`.
pub(crate) fn generators(p: &Polyhedron) -> GeneratorSet {
    // One span per constraint-to-generator conversion step. A hot span
    // (example3 performs ~186k conversions): untraced runs pay nothing
    // and the flight-recorder ring keeps its low-rate evidence; it is
    // also deliberately field-free, since every byte on this record is
    // multiplied heavily in traced runs.
    let _span = aov_trace::hot_span!("p2.dd.step");
    let d = p.dim();
    let hdim = d + 1;
    // Homogenized constraint rows: (coeff on λ = constant term, then x
    // coefficients), with a kind. λ >= 0 goes first.
    let mut rows: Vec<(QVector, ConstraintKind)> = Vec::with_capacity(p.constraints().len() + 1);
    rows.push((QVector::unit(hdim, 0), ConstraintKind::Ineq));
    for c in p.constraints() {
        let mut row = QVector::zeros(hdim);
        row[0] = c.expr().constant_term().clone();
        for (k, coeff) in c.expr().coeffs().iter().enumerate() {
            row[k + 1] = coeff.clone();
        }
        rows.push((row, c.kind()));
    }
    let total_ineqs = rows
        .iter()
        .filter(|(_, k)| *k == ConstraintKind::Ineq)
        .count();

    // Initial cone: all of Q^{d+1} — lines along every axis.
    let mut bi: Vec<QVector> = (0..hdim).map(|k| QVector::unit(hdim, k)).collect();
    let mut uni: Vec<Gen> = Vec::new();
    let mut processed_ineqs = 0usize;

    for (row, kind) in rows {
        let f = |v: &QVector| row.dot(v);
        // Case 1: some line is non-orthogonal to the constraint.
        if let Some(pos) = bi.iter().position(|b| !f(b).is_zero()) {
            let b0 = bi.remove(pos);
            let fb0 = f(&b0);
            for b in bi.iter_mut() {
                let fb = f(b);
                if !fb.is_zero() {
                    *b = normalize(&(&*b - &b0.scale(&(&fb / &fb0))));
                }
            }
            for g in uni.iter_mut() {
                let fg = f(&g.v);
                if !fg.is_zero() {
                    g.v = normalize(&(&g.v - &b0.scale(&(&fg / &fb0))));
                    // Previously processed constraints are unaffected
                    // (b0 was orthogonal to all of them); the current one
                    // now holds with equality.
                }
                if *kindof(&kind) == ConstraintKind::Ineq {
                    g.tight.push(true);
                }
            }
            match kind {
                ConstraintKind::Ineq => {
                    // b0 becomes a unidirectional ray, oriented so f > 0;
                    // tight on all previous inequalities, not the current.
                    let oriented = if fb0.is_negative() { -&b0 } else { b0 };
                    let mut tight = vec![true; processed_ineqs];
                    tight.push(false);
                    uni.push(Gen {
                        v: normalize(&oriented),
                        tight,
                    });
                    processed_ineqs += 1;
                }
                ConstraintKind::Eq => {
                    // The line is simply removed.
                }
            }
            continue;
        }
        // Case 2: all lines orthogonal — combine unidirectional rays.
        let values: Vec<Rational> = uni.iter().map(|g| f(&g.v)).collect();
        let mut next: Vec<Gen> = Vec::new();
        for (g, val) in uni.iter().zip(&values) {
            let keep = match kind {
                ConstraintKind::Ineq => !val.is_negative(),
                ConstraintKind::Eq => val.is_zero(),
            };
            if keep {
                let mut g = g.clone();
                if kind == ConstraintKind::Ineq {
                    g.tight.push(val.is_zero());
                }
                next.push(g);
            }
        }
        // Adjacent (+,−) pairs produce new rays on the hyperplane.
        for (ip, vp) in values.iter().enumerate() {
            if !vp.is_positive() {
                continue;
            }
            for (in_, vn) in values.iter().enumerate() {
                if !vn.is_negative() {
                    continue;
                }
                if !adjacent(&uni, ip, in_, processed_ineqs) {
                    continue;
                }
                let combo = &uni[ip].v.scale(&-vn) + &uni[in_].v.scale(vp);
                let combo = normalize(&combo);
                if combo.is_zero() {
                    continue;
                }
                let mut tight: Vec<bool> = (0..processed_ineqs)
                    .map(|k| uni[ip].tight[k] && uni[in_].tight[k])
                    .collect();
                if kind == ConstraintKind::Ineq {
                    tight.push(true);
                }
                next.push(Gen { v: combo, tight });
            }
        }
        if kind == ConstraintKind::Ineq {
            processed_ineqs += 1;
        }
        uni = dedup_gens(next);
    }
    debug_assert_eq!(processed_ineqs, total_ineqs);

    // Extract polyhedron generators from the cone.
    let mut out = GeneratorSet::default();
    for b in bi {
        debug_assert!(b[0].is_zero(), "line with nonzero homogenizing coord");
        out.lines.push(normalize(&drop_lambda(&b)));
    }
    for g in uni {
        let lambda = &g.v[0];
        if lambda.is_positive() {
            let x = drop_lambda(&g.v);
            out.vertices.push(x.scale(&lambda.recip()));
        } else {
            debug_assert!(lambda.is_zero());
            let dir = drop_lambda(&g.v);
            if !dir.is_zero() {
                out.rays.push(normalize(&dir));
            }
        }
    }
    use std::sync::atomic::Ordering::Relaxed;
    aov_support::static_counter!("polyhedra.dd.conversions").fetch_add(1, Relaxed);
    aov_support::static_counter!("polyhedra.dd.vertices")
        .fetch_add(out.vertices.len() as u64, Relaxed);
    aov_support::static_counter!("polyhedra.dd.rays").fetch_add(out.rays.len() as u64, Relaxed);
    out
}

fn kindof(k: &ConstraintKind) -> &ConstraintKind {
    k
}

fn drop_lambda(v: &QVector) -> QVector {
    v.iter().skip(1).cloned().collect()
}

/// Combinatorial adjacency: `p` and `n` are adjacent iff no *other* ray's
/// tight set contains `tight(p) ∩ tight(n)`.
fn adjacent(uni: &[Gen], p: usize, n: usize, num_ineqs: usize) -> bool {
    let common: Vec<usize> = (0..num_ineqs)
        .filter(|&k| uni[p].tight[k] && uni[n].tight[k])
        .collect();
    for (i, g) in uni.iter().enumerate() {
        if i == p || i == n {
            continue;
        }
        if common.iter().all(|&k| g.tight[k]) {
            return false;
        }
    }
    true
}

fn dedup_gens(gens: Vec<Gen>) -> Vec<Gen> {
    let mut out: Vec<Gen> = Vec::with_capacity(gens.len());
    for g in gens {
        if !out.iter().any(|h| h.v == g.v) {
            out.push(g);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Constraint;
    use aov_linalg::AffineExpr;

    fn ge(coeffs: &[i64], c: i64) -> Constraint {
        Constraint::ge0(AffineExpr::from_i64(coeffs, c))
    }

    fn sorted(vs: &[QVector]) -> Vec<String> {
        let mut out: Vec<String> = vs.iter().map(|v| v.to_string()).collect();
        out.sort();
        out
    }

    #[test]
    fn unit_square() {
        let p = Polyhedron::from_constraints(
            2,
            vec![
                ge(&[1, 0], 0),
                ge(&[0, 1], 0),
                ge(&[-1, 0], 1),
                ge(&[0, -1], 1),
            ],
        );
        let g = p.generators();
        assert!(g.is_bounded());
        assert_eq!(
            sorted(&g.vertices),
            vec!["(0, 0)", "(0, 1)", "(1, 0)", "(1, 1)"]
        );
    }

    #[test]
    fn triangle_with_rational_vertex() {
        // x >= 0, y >= 0, 2x + 3y <= 1 -> vertices (0,0), (1/2,0), (0,1/3).
        let p =
            Polyhedron::from_constraints(2, vec![ge(&[1, 0], 0), ge(&[0, 1], 0), ge(&[-2, -3], 1)]);
        let g = p.generators();
        assert_eq!(sorted(&g.vertices), vec!["(0, 0)", "(0, 1/3)", "(1/2, 0)"]);
    }

    #[test]
    fn halfplane_has_vertex_ray_line() {
        let p = Polyhedron::from_constraints(2, vec![ge(&[1, 0], 0)]); // x >= 0
        let g = p.generators();
        assert_eq!(g.vertices.len(), 1);
        assert_eq!(g.rays.len(), 1);
        assert_eq!(g.lines.len(), 1);
        assert_eq!(g.rays[0], QVector::from_i64(&[1, 0]));
        assert!(
            g.lines[0] == QVector::from_i64(&[0, 1]) || g.lines[0] == QVector::from_i64(&[0, -1])
        );
    }

    #[test]
    fn positive_quadrant() {
        let p = Polyhedron::from_constraints(2, vec![ge(&[1, 0], 0), ge(&[0, 1], 0)]);
        let g = p.generators();
        assert_eq!(sorted(&g.vertices), vec!["(0, 0)"]);
        assert_eq!(sorted(&g.rays), vec!["(0, 1)", "(1, 0)"]);
        assert!(g.lines.is_empty());
    }

    #[test]
    fn empty_polyhedron_has_no_vertices() {
        let p = Polyhedron::from_constraints(1, vec![ge(&[1], -3), ge(&[-1], 1)]);
        assert!(p.generators().is_empty());
    }

    #[test]
    fn single_point_from_equalities() {
        let p = Polyhedron::from_constraints(
            2,
            vec![
                Constraint::eq0(AffineExpr::from_i64(&[1, 0], -2)),
                Constraint::eq0(AffineExpr::from_i64(&[0, 1], -3)),
            ],
        );
        let g = p.generators();
        assert_eq!(g.vertices, vec![QVector::from_i64(&[2, 3])]);
        assert!(g.is_bounded());
    }

    #[test]
    fn paper_parameter_domain_vertex_and_rays() {
        // N = {(n, m) | n >= 1, m >= 1}: vertex (1,1), rays (1,0), (0,1)
        // (§5.2 of the paper).
        let p = Polyhedron::from_constraints(2, vec![ge(&[1, 0], -1), ge(&[0, 1], -1)]);
        let g = p.generators();
        assert_eq!(sorted(&g.vertices), vec!["(1, 1)"]);
        assert_eq!(sorted(&g.rays), vec!["(0, 1)", "(1, 0)"]);
        assert!(g.lines.is_empty());
    }

    #[test]
    fn line_from_unconstrained_direction() {
        // {(x, y) | 0 <= x <= 1}: y is a lineality direction.
        let p = Polyhedron::from_constraints(2, vec![ge(&[1, 0], 0), ge(&[-1, 0], 1)]);
        let g = p.generators();
        assert_eq!(g.lines.len(), 1);
        assert_eq!(g.vertices.len(), 2);
        assert!(g.rays.is_empty());
    }

    #[test]
    fn degenerate_vertex_square_with_cut() {
        // Unit square cut by x + y <= 1: triangle (0,0),(1,0),(0,1).
        let p = Polyhedron::from_constraints(
            2,
            vec![
                ge(&[1, 0], 0),
                ge(&[0, 1], 0),
                ge(&[-1, 0], 1),
                ge(&[0, -1], 1),
                ge(&[-1, -1], 1),
            ],
        );
        let g = p.generators();
        assert_eq!(sorted(&g.vertices), vec!["(0, 0)", "(0, 1)", "(1, 0)"]);
    }

    /// Brute-force vertex enumeration for bounded polytopes: solve every
    /// d-subset of tight constraints and keep feasible solutions.
    fn brute_force_vertices(p: &Polyhedron) -> Vec<QVector> {
        use aov_linalg::QMatrix;
        let d = p.dim();
        let cs = p.constraints();
        let n = cs.len();
        let mut found: Vec<QVector> = Vec::new();
        let mut idx: Vec<usize> = (0..d).collect();
        loop {
            // Solve the subset `idx`.
            let rows: Vec<QVector> = idx.iter().map(|&i| cs[i].expr().coeffs().clone()).collect();
            let m = QMatrix::from_rows(rows);
            let b: QVector = idx.iter().map(|&i| -cs[i].expr().constant_term()).collect();
            if let Some(x) = m.solve(&b) {
                if p.contains(&x) && !found.contains(&x) {
                    found.push(x);
                }
            }
            // Next combination.
            let mut k = d;
            loop {
                if k == 0 {
                    return found;
                }
                k -= 1;
                if idx[k] + (d - k) < n {
                    idx[k] += 1;
                    for j in k + 1..d {
                        idx[j] = idx[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }

    #[test]
    fn dd_matches_brute_force_on_random_polytopes() {
        let mut rng = aov_support::Rng::new(7);
        for _case in 0..40 {
            let d = rng.usize_in(2, 3);
            // Random cuts plus a bounding box to keep it a polytope.
            let mut cs = Vec::new();
            for k in 0..d {
                let mut lo = vec![0i64; d];
                lo[k] = 1;
                cs.push(ge(&lo.clone(), 5));
                let mut hi = vec![0i64; d];
                hi[k] = -1;
                cs.push(ge(&hi, 5));
            }
            for _ in 0..rng.usize_in(1, 3) {
                let coeffs = rng.vec_i64(-3, 3, d);
                let c = rng.i64_in(-4, 6);
                cs.push(ge(&coeffs, c));
            }
            let p = Polyhedron::from_constraints(d, cs);
            let dd = p.generators();
            assert!(dd.is_bounded(), "boxed polytope must be bounded");
            let bf = brute_force_vertices(&p);
            assert_eq!(
                sorted(&dd.vertices),
                sorted(&bf),
                "vertex mismatch on {p:?}"
            );
        }
    }
}
