//! Convex polyhedra for the `aov` workspace.
//!
//! The linearization step of Thies et al. (PLDI 2001, §4.4) rests on
//! Theorem 1: an affine form is nonnegative on a polyhedron `D = P + C`
//! iff it is nonnegative on the vertices of the polytope `P` and its
//! linear part is nonnegative (resp. null) on the rays (resp. lines) of
//! the cone `C`. This crate supplies everything that theorem needs:
//!
//! * [`Polyhedron`] — H-representation over named-free rational dims,
//!   with emptiness (exact LP), containment, intersection and redundancy
//!   removal,
//! * [`GeneratorSet`] / [`Polyhedron::generators`] — vertices, rays and
//!   lines via Chernikova's double-description method,
//! * [`Polyhedron::eliminate_dims`] — Fourier–Motzkin projection,
//! * [`param`] — vertices of a polytope whose right-hand sides depend
//!   affinely on symbolic parameters (Loechner–Wilde-style, with chamber
//!   splitting), needed when iteration-domain vertices depend on loop
//!   bounds or on the unknown occupancy vector.
//!
//! # Examples
//!
//! ```
//! use aov_polyhedra::{Constraint, Polyhedron};
//! use aov_linalg::{AffineExpr, QVector};
//!
//! // The triangle 0 <= x, 0 <= y, x + y <= 3.
//! let tri = Polyhedron::from_constraints(2, vec![
//!     Constraint::ge0(AffineExpr::from_i64(&[1, 0], 0)),
//!     Constraint::ge0(AffineExpr::from_i64(&[0, 1], 0)),
//!     Constraint::ge0(AffineExpr::from_i64(&[-1, -1], 3)),
//! ]);
//! let gens = tri.generators();
//! assert_eq!(gens.vertices.len(), 3);
//! assert!(gens.rays.is_empty() && gens.lines.is_empty());
//! assert!(tri.contains(&QVector::from_i64(&[1, 1])));
//! assert!(!tri.contains(&QVector::from_i64(&[3, 1])));
//! ```

mod constraint;
mod dd;
mod fm;
pub mod param;
mod polyhedron;

pub use constraint::{Constraint, ConstraintKind};
pub use dd::GeneratorSet;
pub use polyhedron::Polyhedron;

/// Errors from polyhedral computations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolyhedraError {
    /// Chamber decomposition exceeded the recursion limit.
    ChamberDepthExceeded,
    /// The eliminated sub-polytope is unbounded for some parameter values,
    /// so vertex evaluation (Theorem 1) does not apply.
    UnboundedDirection,
    /// A candidate basis system was singular (internal invariant).
    SingularBasis,
}

impl std::fmt::Display for PolyhedraError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolyhedraError::ChamberDepthExceeded => {
                write!(f, "chamber decomposition exceeded recursion limit")
            }
            PolyhedraError::UnboundedDirection => {
                write!(f, "polytope is unbounded in an eliminated direction")
            }
            PolyhedraError::SingularBasis => write!(f, "singular candidate basis"),
        }
    }
}

impl std::error::Error for PolyhedraError {}
