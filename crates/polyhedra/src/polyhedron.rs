//! H-representation polyhedra with exact emptiness and redundancy tests.

use crate::dd::{self, GeneratorSet};
use crate::fm;
use crate::{Constraint, ConstraintKind};
use aov_linalg::{AffineExpr, QVector, VarSet};
use aov_lp::{Cmp, LpOutcome, Model};
use aov_numeric::Rational;
use std::fmt;

/// A convex polyhedron `{x ∈ Q^dim | A x + b >= 0, E x + f = 0}`.
///
/// Stored as a list of [`Constraint`]s over an anonymous `dim`-dimensional
/// space. All predicates are exact (rational LP / double description).
///
/// # Examples
///
/// ```
/// use aov_polyhedra::{Constraint, Polyhedron};
/// use aov_linalg::AffineExpr;
///
/// // 1 <= i <= 10
/// let p = Polyhedron::from_constraints(1, vec![
///     Constraint::ge0(AffineExpr::from_i64(&[1], -1)),
///     Constraint::ge0(AffineExpr::from_i64(&[-1], 10)),
/// ]);
/// assert!(!p.is_empty());
/// assert!(p.intersect(&Polyhedron::from_constraints(1, vec![
///     Constraint::ge0(AffineExpr::from_i64(&[1], -11)),
/// ])).is_empty());
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Polyhedron {
    dim: usize,
    constraints: Vec<Constraint>,
}

impl Polyhedron {
    /// The whole space `Q^dim`.
    pub fn universe(dim: usize) -> Self {
        Polyhedron {
            dim,
            constraints: Vec::new(),
        }
    }

    /// An empty polyhedron in `Q^dim`.
    pub fn empty(dim: usize) -> Self {
        Polyhedron {
            dim,
            constraints: vec![Constraint::ge0(AffineExpr::constant(dim, (-1).into()))],
        }
    }

    /// Builds from constraints.
    ///
    /// # Panics
    ///
    /// Panics if any constraint has a dimension other than `dim`.
    pub fn from_constraints(dim: usize, constraints: Vec<Constraint>) -> Self {
        for c in &constraints {
            assert_eq!(c.dim(), dim, "constraint dimension mismatch");
        }
        let constraints = constraints
            .into_iter()
            .filter(|c| !c.is_trivially_true())
            .collect();
        Polyhedron { dim, constraints }
    }

    /// An axis-aligned box `lo[k] <= x_k <= hi[k]` (inclusive). Bounds are
    /// given as affine expressions over the same space, enabling symbolic
    /// bounds like `1 <= i <= n` when the space includes `n`.
    pub fn from_bounds(dim: usize, bounds: &[(usize, AffineExpr, AffineExpr)]) -> Self {
        let mut cs = Vec::new();
        for (k, lo, hi) in bounds {
            let xk = AffineExpr::var(dim, *k);
            cs.push(Constraint::ge(xk.clone(), lo.clone()));
            cs.push(Constraint::le(xk, hi.clone()));
        }
        Polyhedron::from_constraints(dim, cs)
    }

    /// Dimension of the ambient space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Adds one constraint.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn add_constraint(&mut self, c: Constraint) {
        assert_eq!(c.dim(), self.dim, "constraint dimension mismatch");
        if !c.is_trivially_true() {
            self.constraints.push(c);
        }
    }

    /// Intersection with another polyhedron of the same dimension.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn intersect(&self, other: &Polyhedron) -> Polyhedron {
        assert_eq!(self.dim, other.dim, "intersect dimension mismatch");
        let mut p = self.clone();
        for c in &other.constraints {
            p.add_constraint(c.clone());
        }
        p
    }

    /// Whether `x` satisfies every constraint.
    pub fn contains(&self, x: &QVector) -> bool {
        self.constraints.iter().all(|c| c.satisfied_by(x))
    }

    /// Exact rational emptiness test (phase-1 simplex).
    pub fn is_empty(&self) -> bool {
        if self.constraints.iter().any(Constraint::is_trivially_false) {
            return true;
        }
        let mut m = Model::new();
        for k in 0..self.dim {
            m.add_var(format!("x{k}"));
        }
        for c in &self.constraints {
            m.constrain(
                c.expr().clone(),
                match c.kind() {
                    ConstraintKind::Ineq => Cmp::Ge,
                    ConstraintKind::Eq => Cmp::Eq,
                },
            );
        }
        match m.solve_lp() {
            LpOutcome::Infeasible => true,
            LpOutcome::Optimal(_) | LpOutcome::Unbounded => false,
            // Unlimited budgets cannot trip; only an injected fault
            // lands here. Panic instead of guessing an answer — the
            // engine's stage isolation turns this into a degraded
            // report, a wrong emptiness verdict would corrupt it.
            LpOutcome::LimitReached => panic!("solver fault during emptiness check"),
        }
    }

    /// Whether the affine form `e >= 0` holds everywhere on the
    /// polyhedron (exact; an empty polyhedron implies everything).
    pub fn implies_nonneg(&self, e: &AffineExpr) -> bool {
        assert_eq!(e.dim(), self.dim, "expression dimension mismatch");
        let mut m = Model::new();
        for k in 0..self.dim {
            m.add_var(format!("x{k}"));
        }
        for c in &self.constraints {
            m.constrain(
                c.expr().clone(),
                match c.kind() {
                    ConstraintKind::Ineq => Cmp::Ge,
                    ConstraintKind::Eq => Cmp::Eq,
                },
            );
        }
        m.minimize(e.clone());
        match m.solve_lp() {
            LpOutcome::Optimal(sol) => !sol.objective.is_negative(),
            LpOutcome::Infeasible => true,
            LpOutcome::Unbounded => false,
            // See `is_empty`: reachable only via an injected fault.
            LpOutcome::LimitReached => panic!("solver fault during implication check"),
        }
    }

    /// Minimum of `e` over the polyhedron: `Some(v)` when attained,
    /// `None` when unbounded below or the polyhedron is empty.
    pub fn minimum(&self, e: &AffineExpr) -> Option<Rational> {
        let mut m = Model::new();
        for k in 0..self.dim {
            m.add_var(format!("x{k}"));
        }
        for c in &self.constraints {
            m.constrain(
                c.expr().clone(),
                match c.kind() {
                    ConstraintKind::Ineq => Cmp::Ge,
                    ConstraintKind::Eq => Cmp::Eq,
                },
            );
        }
        m.minimize(e.clone());
        match m.solve_lp() {
            LpOutcome::Optimal(sol) => Some(sol.objective),
            // See `is_empty`: reachable only via an injected fault.
            LpOutcome::LimitReached => panic!("solver fault during minimization"),
            _ => None,
        }
    }

    /// Maximum of `e` over the polyhedron (see [`Polyhedron::minimum`]).
    pub fn maximum(&self, e: &AffineExpr) -> Option<Rational> {
        self.minimum(&-e).map(|v| -v)
    }

    /// Removes constraints implied by the rest (exact LP test). The result
    /// describes the same set with an irredundant (not necessarily
    /// minimal-cardinality for degenerate inputs) system.
    pub fn remove_redundant(&self) -> Polyhedron {
        use std::sync::atomic::Ordering::Relaxed;
        let _span = aov_trace::span!("p2.redundancy", rows = self.constraints.len());
        let mut kept: Vec<Constraint> = self.constraints.clone();
        let mut i = 0;
        while i < kept.len() {
            let candidate = kept[i].clone();
            if candidate.is_equality() {
                i += 1;
                continue; // keep equalities verbatim
            }
            let mut rest = kept.clone();
            rest.remove(i);
            let without = Polyhedron {
                dim: self.dim,
                constraints: rest,
            };
            aov_support::static_counter!("polyhedra.redundancy.checks").fetch_add(1, Relaxed);
            if without.implies_nonneg(candidate.expr()) {
                aov_support::static_counter!("polyhedra.redundancy.rows_dropped")
                    .fetch_add(1, Relaxed);
                kept.remove(i);
            } else {
                i += 1;
            }
        }
        Polyhedron {
            dim: self.dim,
            constraints: kept,
        }
    }

    /// Vertices, rays and lines via Chernikova's double-description
    /// method.
    pub fn generators(&self) -> GeneratorSet {
        dd::generators(self)
    }

    /// Fourier–Motzkin elimination of dimension `k`; the result lives in
    /// `dim - 1` dimensions (indices above `k` shift down).
    ///
    /// # Panics
    ///
    /// Panics if `k >= dim`.
    pub fn eliminate_dim(&self, k: usize) -> Polyhedron {
        fm::eliminate_dim(self, k)
    }

    /// Eliminates several dimensions (descending index order internally);
    /// the result keeps the remaining dimensions in their original
    /// relative order.
    pub fn eliminate_dims(&self, dims: &[usize]) -> Polyhedron {
        let mut sorted: Vec<usize> = dims.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut p = self.clone();
        for &k in sorted.iter().rev() {
            p = p.eliminate_dim(k);
        }
        p
    }

    /// Whether `self ⊆ other` (exact).
    pub fn is_subset_of(&self, other: &Polyhedron) -> bool {
        assert_eq!(self.dim, other.dim, "subset dimension mismatch");
        other.constraints.iter().all(|c| match c.kind() {
            ConstraintKind::Ineq => self.implies_nonneg(c.expr()),
            ConstraintKind::Eq => self.implies_nonneg(c.expr()) && self.implies_nonneg(&-c.expr()),
        })
    }

    /// Renders the constraint system with variable names.
    pub fn display<'a>(&'a self, vars: &'a VarSet) -> impl fmt::Display + 'a {
        DisplayPoly { p: self, vars }
    }
}

struct DisplayPoly<'a> {
    p: &'a Polyhedron,
    vars: &'a VarSet,
}

impl fmt::Display for DisplayPoly<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{{")?;
        for c in &self.p.constraints {
            writeln!(f, "  {}", c.display(self.vars))?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for Polyhedron {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Polyhedron(dim={}, {:?})", self.dim, self.constraints)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ge(coeffs: &[i64], c: i64) -> Constraint {
        Constraint::ge0(AffineExpr::from_i64(coeffs, c))
    }

    #[test]
    fn emptiness() {
        let p = Polyhedron::from_constraints(1, vec![ge(&[1], -3), ge(&[-1], 1)]);
        assert!(p.is_empty()); // x >= 3 and x <= 1
        let q = Polyhedron::from_constraints(1, vec![ge(&[1], -3), ge(&[-1], 10)]);
        assert!(!q.is_empty());
        assert!(Polyhedron::empty(4).is_empty());
        assert!(!Polyhedron::universe(0).is_empty());
        assert!(!Polyhedron::universe(3).is_empty());
    }

    #[test]
    fn contains_points() {
        let square = Polyhedron::from_bounds(
            2,
            &[
                (
                    0,
                    AffineExpr::constant(2, 0.into()),
                    AffineExpr::constant(2, 2.into()),
                ),
                (
                    1,
                    AffineExpr::constant(2, 0.into()),
                    AffineExpr::constant(2, 2.into()),
                ),
            ],
        );
        assert!(square.contains(&QVector::from_i64(&[1, 1])));
        assert!(square.contains(&QVector::from_i64(&[0, 2])));
        assert!(!square.contains(&QVector::from_i64(&[3, 0])));
    }

    #[test]
    fn implication() {
        // x in [1, 5] implies x + 10 >= 0 but not x - 2 >= 0.
        let p = Polyhedron::from_constraints(1, vec![ge(&[1], -1), ge(&[-1], 5)]);
        assert!(p.implies_nonneg(&AffineExpr::from_i64(&[1], 10)));
        assert!(!p.implies_nonneg(&AffineExpr::from_i64(&[1], -2)));
        // Empty implies anything.
        assert!(Polyhedron::empty(1).implies_nonneg(&AffineExpr::from_i64(&[-1], -100)));
        // Unbounded direction is not implied.
        assert!(!Polyhedron::universe(1).implies_nonneg(&AffineExpr::from_i64(&[1], 0)));
    }

    #[test]
    fn extrema() {
        let p = Polyhedron::from_constraints(1, vec![ge(&[1], -1), ge(&[-1], 5)]);
        let x = AffineExpr::var(1, 0);
        assert_eq!(p.minimum(&x), Some(Rational::from(1)));
        assert_eq!(p.maximum(&x), Some(Rational::from(5)));
        assert_eq!(Polyhedron::universe(1).minimum(&x), None);
    }

    #[test]
    fn redundancy_removal() {
        // x >= 0, x >= -5 (redundant), x <= 10, x <= 20 (redundant).
        let p = Polyhedron::from_constraints(
            1,
            vec![ge(&[1], 0), ge(&[1], 5), ge(&[-1], 10), ge(&[-1], 20)],
        );
        let r = p.remove_redundant();
        assert_eq!(r.constraints().len(), 2);
        assert!(r.is_subset_of(&p) && p.is_subset_of(&r));
    }

    #[test]
    fn subset() {
        let small = Polyhedron::from_constraints(1, vec![ge(&[1], -2), ge(&[-1], 4)]); // [2,4]
        let big = Polyhedron::from_constraints(1, vec![ge(&[1], 0), ge(&[-1], 10)]); // [0,10]
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
    }

    #[test]
    fn equality_constraints_respected() {
        let p = Polyhedron::from_constraints(
            2,
            vec![
                Constraint::eq0(AffineExpr::from_i64(&[1, -1], 0)), // x == y
                ge(&[1, 0], 0),
            ],
        );
        assert!(p.contains(&QVector::from_i64(&[2, 2])));
        assert!(!p.contains(&QVector::from_i64(&[2, 3])));
        assert!(p.implies_nonneg(&AffineExpr::from_i64(&[0, 1], 0))); // y >= 0 follows
    }
}
