//! Parameterized vertices (Loechner–Wilde-style) with chamber splitting.
//!
//! The linearization of §4.4.2 of the paper replaces an iteration vector
//! by the vertices of its (parameterized) domain. When the domain's
//! right-hand sides depend on symbolic parameters — loop bounds `N`, or
//! the unknown occupancy vector `v` — the vertices are affine functions of
//! those parameters, and *which* candidate intersections are actual
//! vertices can change across the parameter space. Following [13]
//! (Loechner & Wilde), we enumerate candidate bases (the matrix of
//! eliminated-variable coefficients is constant, so each candidate is an
//! affine function of the parameters) and recursively split the parameter
//! domain into *chambers* on which the vertex set is uniform.

use crate::{Constraint, ConstraintKind, PolyhedraError, Polyhedron};
use aov_linalg::{AffineExpr, QMatrix, QVector};
use aov_numeric::Rational;

/// A vertex of the eliminated-variable polytope, as affine functions of
/// the parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamVertex {
    /// One affine expression (over the parameter space) per eliminated
    /// dimension.
    pub coords: Vec<AffineExpr>,
}

impl ParamVertex {
    /// Evaluates the vertex at a concrete parameter point.
    pub fn eval(&self, params: &QVector) -> QVector {
        self.coords.iter().map(|c| c.eval(params)).collect()
    }
}

/// A region of parameter space with a uniform vertex set.
#[derive(Debug, Clone)]
pub struct Chamber {
    /// Sub-polyhedron of the parameter domain.
    pub domain: Polyhedron,
    /// Vertices valid throughout `domain`.
    pub vertices: Vec<ParamVertex>,
}

/// Maximum recursion depth of chamber splitting. Depth grows by one per
/// sign split and per candidate exclusion, so it scales with the number
/// of candidate bases rather than the dimension.
const MAX_DEPTH: usize = 512;

/// Computes the parameterized vertices of the polytope obtained by fixing
/// the parameters in `system`.
///
/// `system` is a polyhedron over `n_elim + n_params` dimensions: the
/// first `n_elim` are the polytope variables (e.g. the iteration vector),
/// the remaining ones are symbolic parameters. `param_domain` constrains
/// the parameters (dimension `system.dim() - n_elim`).
///
/// Returns chambers covering `param_domain` (boundaries may be shared);
/// on each chamber the vertex set of the polytope is the given list
/// (empty when the polytope is empty there).
///
/// # Errors
///
/// * [`PolyhedraError::UnboundedDirection`] — the polytope has a
///   recession direction, so it is unbounded whenever nonempty and vertex
///   evaluation does not capture it.
/// * [`PolyhedraError::ChamberDepthExceeded`] — pathological splitting.
pub fn parameterized_vertices(
    system: &Polyhedron,
    n_elim: usize,
    param_domain: &Polyhedron,
) -> Result<Vec<Chamber>, PolyhedraError> {
    let _span = aov_trace::span!(
        "p2.vertex_enum",
        n_elim = n_elim,
        rows = system.constraints().len(),
    );
    aov_support::static_counter!("polyhedra.param.vertex_enums")
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let n_params = system
        .dim()
        .checked_sub(n_elim)
        .expect("n_elim exceeds system dimension");
    assert_eq!(
        param_domain.dim(),
        n_params,
        "parameter domain dimension mismatch"
    );

    // Split equalities into inequality pairs; collect (i-part, param-part).
    let mut rows: Vec<(QVector, AffineExpr)> = Vec::new();
    for c in system.constraints() {
        let ipart: QVector = (0..n_elim).map(|k| c.expr().coeff(k).clone()).collect();
        let ppart = AffineExpr::from_parts(
            (n_elim..system.dim())
                .map(|k| c.expr().coeff(k).clone())
                .collect(),
            c.expr().constant_term().clone(),
        );
        match c.kind() {
            ConstraintKind::Ineq => rows.push((ipart, ppart)),
            ConstraintKind::Eq => {
                rows.push((ipart.clone(), ppart.clone()));
                rows.push((-&ipart, -&ppart));
            }
        }
    }

    // Dedup identical rows — overlapping target/source bounds are common
    // and inflate the candidate-basis count combinatorially.
    let mut deduped: Vec<(QVector, AffineExpr)> = Vec::with_capacity(rows.len());
    for r in rows {
        if !deduped.contains(&r) {
            deduped.push(r);
        }
    }
    let rows = deduped;

    // Boundedness: the recession cone {i | a_i · i >= 0 ∀rows} must be {0}.
    let recession = Polyhedron::from_constraints(
        n_elim,
        rows.iter()
            .map(|(ipart, _)| {
                Constraint::ge0(AffineExpr::from_parts(ipart.clone(), Rational::zero()))
            })
            .collect(),
    );
    let rec_gens = recession.generators();
    if !rec_gens.rays.is_empty() || !rec_gens.lines.is_empty() {
        return Err(PolyhedraError::UnboundedDirection);
    }

    // Candidate vertices: invertible n_elim-subsets of rows.
    let mut candidates: Vec<Candidate> = Vec::new();
    let m = rows.len();
    let mut subset: Vec<usize> = (0..n_elim).collect();
    if m < n_elim {
        return Ok(vec![Chamber {
            domain: param_domain.clone(),
            vertices: Vec::new(),
        }]);
    }
    loop {
        if let Some(cand) = build_candidate(&rows, &subset, n_elim, n_params) {
            candidates.push(cand);
        }
        // Next n_elim-combination of 0..m.
        let mut k = n_elim;
        let done = loop {
            if k == 0 {
                break true;
            }
            k -= 1;
            if subset[k] + (n_elim - k) < m {
                subset[k] += 1;
                for j in k + 1..n_elim {
                    subset[j] = subset[j - 1] + 1;
                }
                break false;
            }
        };
        if done {
            break;
        }
    }

    let mut out = Vec::new();
    let active: Vec<usize> = (0..candidates.len()).collect();
    split(&candidates, &active, param_domain.clone(), 0, &mut out)?;
    Ok(out)
}

struct Candidate {
    coords: Vec<AffineExpr>,
    /// Feasibility conditions (affine over params, each must be >= 0).
    conditions: Vec<AffineExpr>,
}

fn build_candidate(
    rows: &[(QVector, AffineExpr)],
    subset: &[usize],
    n_elim: usize,
    n_params: usize,
) -> Option<Candidate> {
    let m = QMatrix::from_rows(subset.iter().map(|&i| rows[i].0.clone()).collect());
    let inv = m.inverse()?;
    // Solve M · i = -g(p): i_k = Σ_j inv[k][j] · (-g_j(p)).
    let coords: Vec<AffineExpr> = (0..n_elim)
        .map(|k| {
            let mut acc = AffineExpr::zero(n_params);
            for (j, &row) in subset.iter().enumerate() {
                let w = -&inv[(k, j)];
                if !w.is_zero() {
                    acc = &acc + &rows[row].1.scale(&w);
                }
            }
            acc
        })
        .collect();
    // Conditions: every non-basis row evaluated at the candidate.
    let mut conditions = Vec::new();
    for (i, (ipart, ppart)) in rows.iter().enumerate() {
        if subset.contains(&i) {
            continue;
        }
        let mut acc = ppart.clone();
        for (k, c) in ipart.iter().enumerate() {
            if !c.is_zero() {
                acc = &acc + &coords[k].scale(c);
            }
        }
        conditions.push(acc);
    }
    Some(Candidate { coords, conditions })
}

#[derive(PartialEq)]
enum Status {
    Always,
    Never,
    /// Condition changes sign on the domain's interior — split on it.
    SplitAt(AffineExpr),
    /// Condition holds only on the face `cond == 0` — reconsider the
    /// candidate there, exclude it elsewhere.
    BoundaryOnly(AffineExpr),
}

/// Sign behaviour of one affine condition over a region given by its
/// generators (Theorem 1: check vertices, the linear part on rays, and
/// both directions on lines). Much cheaper than per-condition LPs.
fn condition_status(cond: &AffineExpr, gens: &crate::GeneratorSet) -> Status {
    let mut min_nonneg = true; // min over region >= 0
    let mut max_neg = true; // max over region < 0
    let mut max_pos = false; // max over region > 0
    for v in &gens.vertices {
        let val = cond.eval(v);
        if val.is_negative() {
            min_nonneg = false;
        } else {
            max_neg = false;
            if val.is_positive() {
                max_pos = true;
            }
        }
    }
    for r in &gens.rays {
        let lin = cond.coeffs().dot(r);
        if lin.is_negative() {
            min_nonneg = false;
        } else if lin.is_positive() {
            max_neg = false;
            max_pos = true;
        }
    }
    for l in &gens.lines {
        let lin = cond.coeffs().dot(l);
        if !lin.is_zero() {
            min_nonneg = false;
            max_neg = false;
            max_pos = true;
        }
    }
    if min_nonneg {
        Status::Always
    } else if max_neg {
        Status::Never
    } else if max_pos {
        Status::SplitAt(cond.clone())
    } else {
        // max <= 0 but attained 0 somewhere: boundary-only.
        Status::BoundaryOnly(cond.clone())
    }
}

fn classify(cand: &Candidate, gens: &crate::GeneratorSet) -> Status {
    for cond in &cand.conditions {
        match condition_status(cond, gens) {
            Status::Always => continue,
            other => return other,
        }
    }
    Status::Always
}

fn split(
    candidates: &[Candidate],
    active: &[usize],
    domain: Polyhedron,
    depth: usize,
    out: &mut Vec<Chamber>,
) -> Result<(), PolyhedraError> {
    // Hot span: chamber splitting recurses thousands of times per
    // vertex enumeration — lite-mode ring events here would flood the
    // flight recorder (see `hot_span!`).
    let _span = aov_trace::hot_span!("p2.chamber", depth = depth, active = active.len());
    let gens = domain.generators();
    if gens.is_empty() {
        return Ok(());
    }
    if depth > MAX_DEPTH {
        return Err(PolyhedraError::ChamberDepthExceeded);
    }
    let mut vertices: Vec<ParamVertex> = Vec::new();
    for (pos, &ci) in active.iter().enumerate() {
        let cand = &candidates[ci];
        match classify(cand, &gens) {
            Status::Always => {
                let v = ParamVertex {
                    coords: cand.coords.clone(),
                };
                if !vertices.contains(&v) {
                    vertices.push(v);
                }
            }
            Status::Never => {}
            Status::SplitAt(cond) => {
                // Both halves are strictly smaller (the condition changes
                // sign on the interior), and in each half this condition
                // resolves to Always / Never / BoundaryOnly.
                aov_support::static_counter!("polyhedra.param.chamber_splits")
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let mut lo = domain.clone();
                lo.add_constraint(Constraint::ge0(cond.clone()));
                let mut hi = domain;
                hi.add_constraint(Constraint::ge0(-&cond));
                split(candidates, active, lo, depth + 1, out)?;
                split(candidates, active, hi, depth + 1, out)?;
                return Ok(());
            }
            Status::BoundaryOnly(cond) => {
                // The candidate is a vertex only on the face `cond == 0`;
                // recurse there with all candidates, and on the full
                // domain with this candidate removed (progress: the
                // active set shrinks).
                let mut face = domain.clone();
                face.add_constraint(Constraint::eq0(cond));
                split(candidates, active, face, depth + 1, out)?;
                let remaining: Vec<usize> = active
                    .iter()
                    .enumerate()
                    .filter(|(p, _)| *p != pos)
                    .map(|(_, &c)| c)
                    .collect();
                split(candidates, &remaining, domain, depth + 1, out)?;
                return Ok(());
            }
        }
    }
    aov_support::static_counter!("polyhedra.param.chambers")
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    out.push(Chamber { domain, vertices });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ge(coeffs: &[i64], c: i64) -> Constraint {
        Constraint::ge0(AffineExpr::from_i64(coeffs, c))
    }

    /// Rectangle 1 <= i <= n, 1 <= j <= m over params (n, m) >= 1: one
    /// chamber with the four symbolic corners of §5.2.
    #[test]
    fn rectangle_vertices_affine_in_bounds() {
        // Dims: (i, j, n, m).
        let system = Polyhedron::from_constraints(
            4,
            vec![
                ge(&[1, 0, 0, 0], -1), // i >= 1
                ge(&[-1, 0, 1, 0], 0), // i <= n
                ge(&[0, 1, 0, 0], -1), // j >= 1
                ge(&[0, -1, 0, 1], 0), // j <= m
            ],
        );
        let params = Polyhedron::from_constraints(2, vec![ge(&[1, 0], -1), ge(&[0, 1], -1)]);
        let chambers = parameterized_vertices(&system, 2, &params).unwrap();
        assert_eq!(chambers.len(), 1);
        let ch = &chambers[0];
        assert_eq!(ch.vertices.len(), 4);
        // Evaluate at (n, m) = (5, 7): corners (1,1), (5,1), (1,7), (5,7).
        let p = QVector::from_i64(&[5, 7]);
        let mut pts: Vec<String> = ch.vertices.iter().map(|v| v.eval(&p).to_string()).collect();
        pts.sort();
        assert_eq!(pts, vec!["(1, 1)", "(1, 7)", "(5, 1)", "(5, 7)"]);
    }

    /// Triangle {1 <= i <= j <= n}: three symbolic vertices.
    #[test]
    fn triangle_vertices() {
        // Dims: (i, j, n).
        let system = Polyhedron::from_constraints(
            3,
            vec![
                ge(&[1, 0, 0], -1), // i >= 1
                ge(&[-1, 1, 0], 0), // j >= i
                ge(&[0, -1, 1], 0), // j <= n
            ],
        );
        let params = Polyhedron::from_constraints(1, vec![ge(&[1], -1)]);
        let chambers = parameterized_vertices(&system, 2, &params).unwrap();
        assert_eq!(chambers.len(), 1);
        let p = QVector::from_i64(&[4]);
        let mut pts: Vec<String> = chambers[0]
            .vertices
            .iter()
            .map(|v| v.eval(&p).to_string())
            .collect();
        pts.sort();
        assert_eq!(pts, vec!["(1, 1)", "(1, 4)", "(4, 4)"]);
    }

    /// A domain whose vertex structure changes: {0 <= i <= p, i <= 3}
    /// over p >= 0 splits at p = 3.
    #[test]
    fn chamber_split_on_structure_change() {
        // Dims: (i, p).
        let system = Polyhedron::from_constraints(
            2,
            vec![
                ge(&[1, 0], 0),  // i >= 0
                ge(&[-1, 1], 0), // i <= p
                ge(&[-1, 0], 3), // i <= 3
            ],
        );
        let params = Polyhedron::from_constraints(1, vec![ge(&[1], 0)]);
        let chambers = parameterized_vertices(&system, 1, &params).unwrap();
        assert!(chambers.len() >= 2, "expected a split, got {chambers:?}");
        // In every chamber, evaluating vertices at an interior point must
        // give the true endpoints {0, min(p, 3)}.
        for ch in &chambers {
            for p in 0..=6 {
                let pt = QVector::from_i64(&[p]);
                if !ch.domain.contains(&pt) {
                    continue;
                }
                let upper = p.min(3);
                let mut got: Vec<Rational> =
                    ch.vertices.iter().map(|v| v.eval(&pt)[0].clone()).collect();
                got.sort();
                got.dedup();
                let mut want = vec![Rational::from(0), Rational::from(upper)];
                want.sort();
                want.dedup();
                assert_eq!(got, want, "p = {p}");
            }
        }
    }

    #[test]
    fn unbounded_polytope_rejected() {
        // i >= 0 with no upper bound.
        let system = Polyhedron::from_constraints(2, vec![ge(&[1, 0], 0)]);
        let params = Polyhedron::universe(1);
        assert!(matches!(
            parameterized_vertices(&system, 1, &params),
            Err(PolyhedraError::UnboundedDirection)
        ));
    }

    #[test]
    fn empty_polytope_yields_empty_vertex_set() {
        // 1 <= i <= 0: empty for every parameter value.
        let system = Polyhedron::from_constraints(2, vec![ge(&[1, 0], -1), ge(&[-1, 0], 0)]);
        let params = Polyhedron::universe(1);
        let chambers = parameterized_vertices(&system, 1, &params).unwrap();
        for ch in &chambers {
            assert!(ch.vertices.is_empty());
        }
    }

    /// Vertices from a candidate with equality constraints.
    #[test]
    fn equality_rows_supported() {
        // i == p, 0 <= i <= 10 over p in [0, 10].
        let system = Polyhedron::from_constraints(
            2,
            vec![
                Constraint::eq0(AffineExpr::from_i64(&[1, -1], 0)),
                ge(&[1, 0], 0),
                ge(&[-1, 0], 10),
            ],
        );
        let params = Polyhedron::from_constraints(1, vec![ge(&[1], 0), ge(&[-1], 10)]);
        let chambers = parameterized_vertices(&system, 1, &params).unwrap();
        // In every chamber the polytope is the single point {p}: distinct
        // vertex *expressions* may coincide as points, so compare values.
        for ch in &chambers {
            for p in 0..=10 {
                let pt = QVector::from_i64(&[p]);
                if !ch.domain.contains(&pt) {
                    continue;
                }
                let mut got: Vec<QVector> = ch.vertices.iter().map(|v| v.eval(&pt)).collect();
                got.dedup();
                assert_eq!(got, vec![QVector::from_i64(&[p])], "p = {p}");
            }
        }
    }
}
