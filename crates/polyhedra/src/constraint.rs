//! Affine constraints (`expr >= 0` or `expr == 0`).

use aov_linalg::{AffineExpr, QVector, VarSet};
use aov_numeric::Rational;
use std::fmt;

/// Kind of constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintKind {
    /// `expr >= 0`
    Ineq,
    /// `expr == 0`
    Eq,
}

/// An affine constraint over an implicit variable space.
///
/// # Examples
///
/// ```
/// use aov_polyhedra::Constraint;
/// use aov_linalg::{AffineExpr, QVector};
///
/// let c = Constraint::ge0(AffineExpr::from_i64(&[1, -1], 0)); // x >= y
/// assert!(c.satisfied_by(&QVector::from_i64(&[3, 2])));
/// assert!(!c.satisfied_by(&QVector::from_i64(&[2, 3])));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Constraint {
    expr: AffineExpr,
    kind: ConstraintKind,
}

impl Constraint {
    /// The constraint `expr >= 0`.
    pub fn ge0(expr: AffineExpr) -> Self {
        Constraint {
            expr,
            kind: ConstraintKind::Ineq,
        }
        .normalized()
    }

    /// The constraint `expr == 0`.
    pub fn eq0(expr: AffineExpr) -> Self {
        Constraint {
            expr,
            kind: ConstraintKind::Eq,
        }
        .normalized()
    }

    /// The constraint `lhs >= rhs`.
    pub fn ge(lhs: AffineExpr, rhs: AffineExpr) -> Self {
        Constraint::ge0(&lhs - &rhs)
    }

    /// The constraint `lhs <= rhs`.
    pub fn le(lhs: AffineExpr, rhs: AffineExpr) -> Self {
        Constraint::ge0(&rhs - &lhs)
    }

    /// The underlying affine expression.
    pub fn expr(&self) -> &AffineExpr {
        &self.expr
    }

    /// The relation kind.
    pub fn kind(&self) -> ConstraintKind {
        self.kind
    }

    /// `true` for equality constraints.
    pub fn is_equality(&self) -> bool {
        self.kind == ConstraintKind::Eq
    }

    /// Dimension of the variable space.
    pub fn dim(&self) -> usize {
        self.expr.dim()
    }

    /// Whether the point satisfies the constraint.
    pub fn satisfied_by(&self, x: &QVector) -> bool {
        let v = self.expr.eval(x);
        match self.kind {
            ConstraintKind::Ineq => !v.is_negative(),
            ConstraintKind::Eq => v.is_zero(),
        }
    }

    /// Whether the constraint is trivially true for all points
    /// (a constant, satisfied expression).
    pub fn is_trivially_true(&self) -> bool {
        self.expr.is_constant()
            && match self.kind {
                ConstraintKind::Ineq => !self.expr.constant_term().is_negative(),
                ConstraintKind::Eq => self.expr.constant_term().is_zero(),
            }
    }

    /// Whether the constraint is unsatisfiable for all points.
    pub fn is_trivially_false(&self) -> bool {
        self.expr.is_constant()
            && match self.kind {
                ConstraintKind::Ineq => self.expr.constant_term().is_negative(),
                ConstraintKind::Eq => !self.expr.constant_term().is_zero(),
            }
    }

    /// Canonical form: integer coefficients divided by their gcd (keeps
    /// the sign, so the constraint is unchanged as a set).
    fn normalized(self) -> Self {
        let cleared = self.expr.clear_denominators();
        // Divide by gcd of all integer coefficients.
        let mut g = aov_numeric::BigInt::zero();
        for c in cleared
            .coeffs()
            .iter()
            .chain(std::iter::once(cleared.constant_term()))
        {
            debug_assert!(c.is_integer());
            g = aov_numeric::gcd_big(&g, c.numer());
        }
        let expr = if g > aov_numeric::BigInt::one() {
            cleared.scale(&Rational::from_big(aov_numeric::BigInt::one(), g))
        } else {
            cleared
        };
        Constraint {
            expr,
            kind: self.kind,
        }
    }

    /// Renders with variable names.
    pub fn display<'a>(&'a self, vars: &'a VarSet) -> impl fmt::Display + 'a {
        DisplayConstraint { c: self, vars }
    }
}

struct DisplayConstraint<'a> {
    c: &'a Constraint,
    vars: &'a VarSet,
}

impl fmt::Display for DisplayConstraint<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rel = match self.c.kind {
            ConstraintKind::Ineq => ">=",
            ConstraintKind::Eq => "==",
        };
        write!(f, "{} {rel} 0", self.c.expr.display(self.vars))
    }
}

impl fmt::Debug for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rel = match self.kind {
            ConstraintKind::Ineq => ">=",
            ConstraintKind::Eq => "==",
        };
        write!(f, "Constraint({:?} {rel} 0)", self.expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn satisfaction() {
        let ge = Constraint::ge0(AffineExpr::from_i64(&[1, -2], 1)); // x - 2y + 1 >= 0
        assert!(ge.satisfied_by(&QVector::from_i64(&[1, 1])));
        assert!(ge.satisfied_by(&QVector::from_i64(&[3, 2])));
        assert!(!ge.satisfied_by(&QVector::from_i64(&[0, 1])));
        let eq = Constraint::eq0(AffineExpr::from_i64(&[1, -1], 0));
        assert!(eq.satisfied_by(&QVector::from_i64(&[4, 4])));
        assert!(!eq.satisfied_by(&QVector::from_i64(&[4, 5])));
    }

    #[test]
    fn normalization_divides_gcd() {
        let c = Constraint::ge0(AffineExpr::from_i64(&[2, 4], 6));
        assert_eq!(c.expr(), &AffineExpr::from_i64(&[1, 2], 3));
        // Rational inputs get cleared to integers.
        let c2 = Constraint::ge0(AffineExpr::from_parts(
            QVector::from_vec(vec![Rational::new(1, 2), Rational::new(1, 3)]),
            Rational::zero(),
        ));
        assert_eq!(c2.expr(), &AffineExpr::from_i64(&[3, 2], 0));
    }

    #[test]
    fn triviality() {
        assert!(Constraint::ge0(AffineExpr::constant(2, 5.into())).is_trivially_true());
        assert!(Constraint::ge0(AffineExpr::constant(2, (-1).into())).is_trivially_false());
        assert!(Constraint::eq0(AffineExpr::zero(2)).is_trivially_true());
        assert!(Constraint::eq0(AffineExpr::constant(2, 3.into())).is_trivially_false());
        assert!(!Constraint::ge0(AffineExpr::var(2, 0)).is_trivially_true());
    }

    #[test]
    fn ge_le_builders() {
        let x = AffineExpr::var(1, 0);
        let two = AffineExpr::constant(1, 2.into());
        let c = Constraint::ge(x.clone(), two.clone()); // x >= 2
        assert!(c.satisfied_by(&QVector::from_i64(&[2])));
        assert!(!c.satisfied_by(&QVector::from_i64(&[1])));
        let c = Constraint::le(x, two); // x <= 2
        assert!(c.satisfied_by(&QVector::from_i64(&[2])));
        assert!(!c.satisfied_by(&QVector::from_i64(&[3])));
    }

    #[test]
    fn display() {
        let vars = VarSet::from_names(["i", "j"]);
        let c = Constraint::ge0(AffineExpr::from_i64(&[1, -1], 2));
        assert_eq!(c.display(&vars).to_string(), "i - j + 2 >= 0");
    }
}
