//! Fourier–Motzkin variable elimination (exact projection).

use crate::{Constraint, ConstraintKind, Polyhedron};
use aov_linalg::AffineExpr;
use aov_numeric::Rational;

/// Eliminates dimension `k`; see [`Polyhedron::eliminate_dim`].
pub(crate) fn eliminate_dim(p: &Polyhedron, k: usize) -> Polyhedron {
    assert!(k < p.dim(), "eliminating dimension {k} of {}", p.dim());
    let _span = aov_trace::span!("p2.fm.project", dim = k, rows = p.constraints().len());
    aov_support::static_counter!("polyhedra.fm.eliminations")
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dim = p.dim();

    // If an equality mentions x_k, substitute it away.
    if let Some(eq_pos) = p
        .constraints()
        .iter()
        .position(|c| c.is_equality() && !c.expr().coeff(k).is_zero())
    {
        let eq = &p.constraints()[eq_pos];
        // From a·x + b = 0 with a_k != 0: x_k = -(rest)/a_k.
        let ak = eq.expr().coeff(k).clone();
        let mut out = Vec::new();
        for (i, c) in p.constraints().iter().enumerate() {
            if i == eq_pos {
                continue;
            }
            let ck = c.expr().coeff(k).clone();
            let expr = if ck.is_zero() {
                c.expr().clone()
            } else {
                // c - (ck/ak) * eq has zero coefficient on x_k.
                &(c.expr().clone()) - &eq.expr().scale(&(&ck / &ak))
            };
            let expr = drop_dim(&expr, k);
            match c.kind() {
                ConstraintKind::Ineq => out.push(Constraint::ge0(expr)),
                ConstraintKind::Eq => out.push(Constraint::eq0(expr)),
            }
        }
        return Polyhedron::from_constraints(dim - 1, simplify(out, dim - 1));
    }

    // Pure inequality elimination.
    let mut lower: Vec<&Constraint> = Vec::new(); // coeff_k > 0 (x_k >= ...)
    let mut upper: Vec<&Constraint> = Vec::new(); // coeff_k < 0 (x_k <= ...)
    let mut keep: Vec<Constraint> = Vec::new();
    for c in p.constraints() {
        let ck = c.expr().coeff(k);
        if ck.is_zero() {
            let expr = drop_dim(c.expr(), k);
            keep.push(match c.kind() {
                ConstraintKind::Ineq => Constraint::ge0(expr),
                ConstraintKind::Eq => Constraint::eq0(expr),
            });
        } else if ck.is_positive() {
            lower.push(c);
        } else {
            upper.push(c);
        }
    }
    for lo in &lower {
        for hi in &upper {
            let cl = lo.expr().coeff(k).clone(); // > 0
            let cu = hi.expr().coeff(k).clone(); // < 0
                                                 // (-cu)·lo + cl·hi eliminates x_k and stays >= 0.
            let combined = &lo.expr().scale(&-&cu) + &hi.expr().scale(&cl);
            debug_assert!(combined.coeff(k).is_zero());
            keep.push(Constraint::ge0(drop_dim(&combined, k)));
        }
    }
    Polyhedron::from_constraints(dim - 1, simplify(keep, dim - 1))
}

/// Removes coordinate `k` (its coefficient must be zero).
fn drop_dim(e: &AffineExpr, k: usize) -> AffineExpr {
    debug_assert!(e.coeff(k).is_zero());
    let coeffs: Vec<Rational> = e
        .coeffs()
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != k)
        .map(|(_, c)| c.clone())
        .collect();
    AffineExpr::from_parts(coeffs.into_iter().collect(), e.constant_term().clone())
}

/// Drops duplicates and trivially-true rows; keeps a trivially-false row
/// (marking emptiness) if one appears.
fn simplify(cs: Vec<Constraint>, dim: usize) -> Vec<Constraint> {
    let mut out: Vec<Constraint> = Vec::new();
    for c in cs {
        if c.is_trivially_true() {
            continue;
        }
        if c.is_trivially_false() {
            return vec![Constraint::ge0(AffineExpr::constant(dim, (-1).into()))];
        }
        if !out.contains(&c) {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aov_linalg::QVector;

    fn ge(coeffs: &[i64], c: i64) -> Constraint {
        Constraint::ge0(AffineExpr::from_i64(coeffs, c))
    }

    #[test]
    fn project_square_to_interval() {
        // 0 <= x <= 2, 1 <= y <= 3; eliminate y -> 0 <= x <= 2.
        let p = Polyhedron::from_constraints(
            2,
            vec![
                ge(&[1, 0], 0),
                ge(&[-1, 0], 2),
                ge(&[0, 1], -1),
                ge(&[0, -1], 3),
            ],
        );
        let q = p.eliminate_dim(1);
        assert_eq!(q.dim(), 1);
        assert!(q.contains(&QVector::from_i64(&[0])));
        assert!(q.contains(&QVector::from_i64(&[2])));
        assert!(!q.contains(&QVector::from_i64(&[3])));
        assert!(!q.contains(&QVector::from_i64(&[-1])));
    }

    #[test]
    fn projection_of_diagonal_strip() {
        // y <= x <= y + 1, 0 <= y <= 5; eliminate y -> 0 <= x <= 6.
        let p = Polyhedron::from_constraints(
            2,
            vec![
                ge(&[1, -1], 0), // x - y >= 0
                ge(&[-1, 1], 1), // y + 1 - x >= 0
                ge(&[0, 1], 0),
                ge(&[0, -1], 5),
            ],
        );
        let q = p.eliminate_dim(1);
        assert!(q.contains(&QVector::from_i64(&[0])));
        assert!(q.contains(&QVector::from_i64(&[6])));
        assert!(!q.contains(&QVector::from_i64(&[7])));
    }

    #[test]
    fn equality_substitution() {
        // x == 2y, 1 <= x <= 4; eliminate x -> 1/2 <= y <= 2.
        let p = Polyhedron::from_constraints(
            2,
            vec![
                Constraint::eq0(AffineExpr::from_i64(&[1, -2], 0)),
                ge(&[1, 0], -1),
                ge(&[-1, 0], 4),
            ],
        );
        let q = p.eliminate_dim(0);
        assert!(q.contains(&QVector::from_vec(vec![Rational::new(1, 2)])));
        assert!(q.contains(&QVector::from_i64(&[2])));
        assert!(!q.contains(&QVector::from_i64(&[3])));
    }

    #[test]
    fn empty_detected_through_projection() {
        // x >= 3, x <= 1 -> eliminating x leaves an infeasible constant row.
        let p = Polyhedron::from_constraints(1, vec![ge(&[1], -3), ge(&[-1], 1)]);
        let q = p.eliminate_dim(0);
        assert_eq!(q.dim(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn eliminate_multiple_dims() {
        // Box in 3D; eliminate y and z.
        let p = Polyhedron::from_constraints(
            3,
            vec![
                ge(&[1, 0, 0], 0),
                ge(&[-1, 0, 0], 7),
                ge(&[0, 1, 0], 0),
                ge(&[0, -1, 0], 1),
                ge(&[0, 0, 1], 0),
                ge(&[0, 0, -1], 1),
            ],
        );
        let q = p.eliminate_dims(&[1, 2]);
        assert_eq!(q.dim(), 1);
        assert!(q.contains(&QVector::from_i64(&[7])));
        assert!(!q.contains(&QVector::from_i64(&[8])));
    }

    #[test]
    fn projection_preserves_feasibility_of_shadows() {
        // For points in P, their projection must lie in the shadow.
        let p = Polyhedron::from_constraints(
            2,
            vec![
                ge(&[2, 1], -2),
                ge(&[-1, 1], 3),
                ge(&[0, -1], 4),
                ge(&[1, 0], 5),
            ],
        );
        let q = p.eliminate_dim(1);
        for x in -10..=10 {
            for y in -10..=10 {
                if p.contains(&QVector::from_i64(&[x, y])) {
                    assert!(
                        q.contains(&QVector::from_i64(&[x])),
                        "projection lost ({x},{y})"
                    );
                }
            }
        }
    }
}
