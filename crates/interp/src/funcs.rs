//! Function-symbol semantics.
//!
//! `add`, `sub`, `min`, `max` get their arithmetic meaning (Example 3's
//! dynamic program really computes a min-plus recurrence). Every other
//! symbol (`f`, `g`, `w`, …) is an *uninterpreted* function realized as a
//! deterministic hash mix of its name and arguments: injectivity is not
//! guaranteed, but any single changed argument changes the result with
//! overwhelming probability, which is what the equivalence oracle needs.

/// Applies a function symbol to evaluated arguments.
pub fn apply(name: &str, args: &[i64]) -> i64 {
    match name {
        "add" => args.iter().fold(0i64, |a, &b| a.wrapping_add(b)),
        "sub" => match args {
            [a, b] => a.wrapping_sub(*b),
            _ => panic!("sub expects 2 arguments, got {}", args.len()),
        },
        "min" => args.iter().copied().min().expect("min of no arguments"),
        "max" => args.iter().copied().max().expect("max of no arguments"),
        "id" => match args {
            [a] => *a,
            _ => panic!("id expects 1 argument"),
        },
        _ => mix(name, args),
    }
}

/// Deterministic initial value of a never-written array cell (a model of
/// the input data / boundary conditions).
pub fn initial(array: &str, index: &[i64]) -> i64 {
    mix_with(0x9e37_79b9_7f4a_7c15, array, index)
}

/// Marker value for reading a cell before any write reached it under the
/// evaluated schedule (only possible when the schedule or the occupancy
/// vector is invalid).
pub fn missing(array: &str, index: &[i64]) -> i64 {
    mix_with(0xbf58_476d_1ce4_e5b9, array, index)
}

fn mix(name: &str, args: &[i64]) -> i64 {
    mix_with(0x94d0_49bb_1331_11eb, name, args)
}

fn mix_with(seed: u64, name: &str, args: &[i64]) -> i64 {
    let mut h = seed;
    for b in name.as_bytes() {
        h = splitmix(h ^ u64::from(*b));
    }
    for &a in args {
        h = splitmix(h ^ (a as u64));
    }
    h as i64
}

/// splitmix64 finalizer — fast avalanche mixing.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_symbols() {
        assert_eq!(apply("add", &[1, 2, 3]), 6);
        assert_eq!(apply("sub", &[5, 3]), 2);
        assert_eq!(apply("min", &[4, -2, 9]), -2);
        assert_eq!(apply("max", &[4, -2, 9]), 9);
        assert_eq!(apply("id", &[7]), 7);
    }

    #[test]
    fn uninterpreted_symbols_are_deterministic_and_sensitive() {
        let a = apply("f", &[1, 2, 3]);
        assert_eq!(a, apply("f", &[1, 2, 3]));
        assert_ne!(a, apply("f", &[1, 2, 4]));
        assert_ne!(a, apply("f", &[2, 1, 3]));
        assert_ne!(a, apply("g", &[1, 2, 3]));
        assert_ne!(a, apply("f", &[1, 2]));
    }

    #[test]
    fn initial_and_missing_differ() {
        assert_ne!(initial("A", &[1, 2]), missing("A", &[1, 2]));
        assert_ne!(initial("A", &[1, 2]), initial("A", &[2, 1]));
        assert_ne!(initial("A", &[1, 2]), initial("B", &[1, 2]));
        assert_eq!(initial("A", &[0]), initial("A", &[0]));
    }

    #[test]
    #[should_panic(expected = "sub expects 2")]
    fn sub_arity_checked() {
        let _ = apply("sub", &[1, 2, 3]);
    }
}
