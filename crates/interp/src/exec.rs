//! Time-stepped execution under an affine schedule.

use crate::domain::{iteration_points, written_by_program};
use crate::funcs;
use crate::store::{ArrayStore, StorageMode};
use aov_ir::{Expr, Program, StmtId};
use aov_numeric::Rational;
use aov_schedule::Schedule;
use std::collections::HashMap;

/// The values computed by every statement instance of a run.
pub type InstanceValues = HashMap<(StmtId, Vec<i64>), i64>;

/// Statistics of a scheduled run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Number of distinct time steps executed.
    pub time_steps: usize,
    /// Total statement instances.
    pub instances: usize,
    /// Cells used per array (observed storage footprint).
    pub cells_used: Vec<usize>,
    /// Maximum instances executed in one time step (ideal parallelism).
    pub max_width: usize,
}

/// Executes the program under `sched` with the given storage mode per
/// array, honoring the paper's §4.3 convention that *reads precede
/// writes within a time step*.
///
/// Returns the value computed by every statement instance plus run
/// statistics. Reads of data-space points never written by the program
/// resolve to deterministic [`funcs::initial`] values (input data);
/// reads of cells whose producing write has not happened yet resolve to
/// [`funcs::missing`] markers (only reachable under an illegal schedule
/// or an invalid occupancy vector).
pub fn run_scheduled(
    p: &Program,
    params: &[i64],
    sched: &Schedule,
    modes: &[StorageMode<'_>],
) -> (InstanceValues, RunStats) {
    assert_eq!(modes.len(), p.arrays().len(), "one storage mode per array");
    // Gather all instances with their times.
    let mut by_time: Vec<(Rational, StmtId, Vec<i64>)> = Vec::new();
    for s in p.stmt_ids() {
        for pt in iteration_points(p, s, params) {
            let t = sched.eval(s, &pt, params);
            by_time.push((t, s, pt));
        }
    }
    by_time.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| (a.1, &a.2).cmp(&(b.1, &b.2))));

    let mut stores: Vec<ArrayStore> = p.arrays().iter().map(|_| ArrayStore::new()).collect();
    let mut values: InstanceValues = HashMap::new();
    let mut stats = RunStats {
        instances: by_time.len(),
        ..RunStats::default()
    };

    let mut idx = 0;
    while idx < by_time.len() {
        // One time step: [idx, end).
        let t = by_time[idx].0.clone();
        let mut end = idx;
        while end < by_time.len() && by_time[end].0 == t {
            end += 1;
        }
        stats.time_steps += 1;
        stats.max_width = stats.max_width.max(end - idx);
        // Phase 1: evaluate all bodies (reads see the previous step).
        let mut writes: Vec<(usize, Vec<i64>, i64)> = Vec::with_capacity(end - idx);
        for (_, s, pt) in &by_time[idx..end] {
            let value = eval_instance(p, *s, pt, params, &stores, modes);
            values.insert((*s, pt.clone()), value);
            let aid = p.statement(*s).writes();
            let cell = modes[aid.0].cell(pt, params);
            writes.push((aid.0, cell, value));
        }
        // Phase 2: apply all writes.
        for (a, cell, value) in writes {
            stores[a].write(cell, value);
        }
        idx = end;
    }
    stats.cells_used = stores.iter().map(ArrayStore::cells_used).collect();
    (values, stats)
}

fn eval_instance(
    p: &Program,
    s: StmtId,
    iter: &[i64],
    params: &[i64],
    stores: &[ArrayStore],
    modes: &[StorageMode<'_>],
) -> i64 {
    // Resolve reads first.
    let st = p.statement(s);
    let point: Vec<i64> = iter.iter().chain(params).copied().collect();
    let mut read_values = Vec::with_capacity(st.reads().len());
    for acc in st.reads() {
        let index: Vec<i64> = acc
            .index()
            .iter()
            .map(|e| e.eval_i64(&point).to_i64().expect("integer index"))
            .collect();
        let aid = acc.array();
        let name = p.array(aid).name();
        let v = if !written_by_program(p, aid, &index, params) {
            funcs::initial(name, &index)
        } else {
            let cell = modes[aid.0].cell(&index, params);
            stores[aid.0]
                .read(&cell)
                .unwrap_or_else(|| funcs::missing(name, &index))
        };
        read_values.push(v);
    }
    eval_expr(st.body(), iter, params, &read_values)
}

fn eval_expr(e: &Expr, iter: &[i64], params: &[i64], reads: &[i64]) -> i64 {
    match e {
        Expr::Read(k) => reads[*k],
        Expr::Const(v) => *v,
        Expr::Iter(k) => iter[*k],
        Expr::Param(k) => params[*k],
        Expr::Call(name, args) => {
            let vals: Vec<i64> = args
                .iter()
                .map(|a| eval_expr(a, iter, params, reads))
                .collect();
            funcs::apply(name, &vals)
        }
    }
}

/// Reference per-instance values: original storage under any legal
/// schedule (single assignment makes the result schedule-independent).
///
/// # Panics
///
/// Panics if the program has no one-dimensional affine schedule.
pub fn reference_values(p: &Program, params: &[i64]) -> InstanceValues {
    let sched = aov_schedule::scheduler::find_schedule(p)
        .expect("reference execution needs a schedulable program");
    let modes: Vec<StorageMode<'_>> = p.arrays().iter().map(|_| StorageMode::Original).collect();
    run_scheduled(p, params, &sched, &modes).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use aov_ir::examples::{example1, example2, example3, prefix_sum};
    use aov_linalg::AffineExpr;

    fn original_modes(p: &Program) -> Vec<StorageMode<'static>> {
        p.arrays().iter().map(|_| StorageMode::Original).collect()
    }

    #[test]
    fn prefix_sum_computes_real_sums() {
        let p = prefix_sum();
        let vals = reference_values(&p, &[5]);
        // P[i] = add(P[i-1], i); P[0] is input data (initial hash).
        let p0 = crate::funcs::initial("P", &[0]);
        let s = p.stmt_by_name("S").unwrap();
        assert_eq!(vals[&(s, vec![1])], p0.wrapping_add(1));
        assert_eq!(vals[&(s, vec![3])], p0.wrapping_add(1 + 2 + 3));
        assert_eq!(vals.len(), 5);
    }

    #[test]
    fn reference_is_schedule_independent() {
        let p = example1();
        let ref_vals = reference_values(&p, &[5, 4]);
        // Run under a different legal schedule (Θ = i + 2j) with original
        // storage: identical instance values.
        let skew = Schedule::uniform_for(&p, &[AffineExpr::from_i64(&[1, 2, 0, 0], 0)]);
        let (vals, _) = run_scheduled(&p, &[5, 4], &skew, &original_modes(&p));
        assert_eq!(ref_vals, vals);
    }

    #[test]
    fn two_phase_semantics_reads_precede_writes() {
        // Under Θ = j with v = (0,1), consumers at time t read values
        // produced at t−1 even though the same cells are overwritten at
        // t. This only works with the reads-then-writes convention.
        use aov_core::{transform::StorageTransform, OccupancyVector};
        let p = example1();
        let row = Schedule::uniform_for(&p, &[AffineExpr::from_i64(&[0, 1, 0, 0], 0)]);
        let a = p.array_by_name("A").unwrap();
        let t = StorageTransform::new(&p, a, &OccupancyVector::new(vec![0, 1])).unwrap();
        let modes = vec![StorageMode::Transformed(&t)];
        let (vals, stats) = run_scheduled(&p, &[5, 4], &row, &modes);
        assert_eq!(vals, reference_values(&p, &[5, 4]));
        // Storage really is one row (n cells).
        assert_eq!(stats.cells_used, vec![5]);
        assert_eq!(stats.time_steps, 4);
        assert_eq!(stats.max_width, 5);
    }

    #[test]
    fn invalid_vector_breaks_semantics() {
        use aov_core::{transform::StorageTransform, OccupancyVector};
        let p = example1();
        // Θ = i + 2j is legal; v = (0,1) is NOT valid for it (the paper's
        // Fig. 4 analysis: (0,1) only works for flat schedules).
        let skew = Schedule::uniform_for(&p, &[AffineExpr::from_i64(&[1, 2, 0, 0], 0)]);
        let a = p.array_by_name("A").unwrap();
        let t = StorageTransform::new(&p, a, &OccupancyVector::new(vec![0, 1])).unwrap();
        let modes = vec![StorageMode::Transformed(&t)];
        let (vals, _) = run_scheduled(&p, &[6, 5], &skew, &modes);
        assert_ne!(vals, reference_values(&p, &[6, 5]));
    }

    #[test]
    fn example2_runs_both_statements() {
        let p = example2();
        let vals = reference_values(&p, &[3, 3]);
        assert_eq!(vals.len(), 18); // 2 statements × 9 points
    }

    #[test]
    fn example3_min_plus_recurrence() {
        let p = example3();
        let vals = reference_values(&p, &[3, 3, 3]);
        assert_eq!(vals.len(), 27);
        // Interior values derive from min of sums — spot check that the
        // interior instance differs from boundary hashes.
        let s2 = p.stmt_by_name("S2").unwrap();
        assert!(vals.contains_key(&(s2, vec![2, 2, 2])));
    }
}
