//! Array storage under original or transformed mappings.

use aov_core::transform::StorageTransform;
use std::collections::HashMap;

/// How an array's data space maps to storage cells.
pub enum StorageMode<'a> {
    /// One cell per data-space point (the original, fully expanded
    /// storage of the single-assignment program).
    Original,
    /// Cells given by an occupancy-vector transformation.
    Transformed(&'a StorageTransform),
}

impl StorageMode<'_> {
    /// The storage cell of a data-space index.
    pub fn cell(&self, index: &[i64], params: &[i64]) -> Vec<i64> {
        match self {
            StorageMode::Original => index.to_vec(),
            StorageMode::Transformed(t) => t.map_point(index, params),
        }
    }
}

/// A sparse store for one array.
#[derive(Debug, Default, Clone)]
pub struct ArrayStore {
    cells: HashMap<Vec<i64>, i64>,
}

impl ArrayStore {
    /// Empty store.
    pub fn new() -> Self {
        ArrayStore::default()
    }

    /// Reads a cell (`None` when never written).
    pub fn read(&self, cell: &[i64]) -> Option<i64> {
        self.cells.get(cell).copied()
    }

    /// Writes a cell.
    pub fn write(&mut self, cell: Vec<i64>, value: i64) {
        self.cells.insert(cell, value);
    }

    /// Number of distinct cells ever written (observed storage size).
    pub fn cells_used(&self) -> usize {
        self.cells.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aov_core::OccupancyVector;
    use aov_ir::examples::example1;

    #[test]
    fn original_mode_is_identity() {
        let m = StorageMode::Original;
        assert_eq!(m.cell(&[3, 4], &[10, 10]), vec![3, 4]);
    }

    #[test]
    fn transformed_mode_collapses() {
        let p = example1();
        let a = p.array_by_name("A").unwrap();
        let t =
            aov_core::transform::StorageTransform::new(&p, a, &OccupancyVector::new(vec![0, 1]))
                .unwrap();
        let m = StorageMode::Transformed(&t);
        assert_eq!(m.cell(&[3, 4], &[10, 10]), m.cell(&[3, 5], &[10, 10]));
        assert_ne!(m.cell(&[3, 4], &[10, 10]), m.cell(&[4, 4], &[10, 10]));
    }

    #[test]
    fn store_read_write() {
        let mut s = ArrayStore::new();
        assert_eq!(s.read(&[1]), None);
        s.write(vec![1], 42);
        assert_eq!(s.read(&[1]), Some(42));
        s.write(vec![1], 7);
        assert_eq!(s.read(&[1]), Some(7));
        assert_eq!(s.cells_used(), 1);
    }
}
