//! The dynamic equivalence oracle.

use crate::exec::{reference_values, run_scheduled};
use crate::store::StorageMode;
use aov_core::transform::StorageTransform;
use aov_ir::Program;
use aov_schedule::Schedule;

/// Whether executing `p` under `sched` with the given storage transforms
/// computes the same value for every statement instance as the original
/// program (arrays without a transform keep original storage).
///
/// This is the paper's §3.2 validity criterion, decided dynamically for
/// one concrete parameter vector.
pub fn semantics_preserved(
    p: &Program,
    params: &[i64],
    sched: &Schedule,
    transforms: &[StorageTransform],
) -> bool {
    let reference = reference_values(p, params);
    let modes: Vec<StorageMode<'_>> = p
        .arrays()
        .iter()
        .enumerate()
        .map(|(aidx, _)| {
            transforms
                .iter()
                .find(|t| t.array().0 == aidx)
                .map_or(StorageMode::Original, StorageMode::Transformed)
        })
        .collect();
    let (vals, _) = run_scheduled(p, params, sched, &modes);
    vals == reference
}

#[cfg(test)]
mod tests {
    use super::*;
    use aov_core::{problems, transform::StorageTransform, OccupancyVector};
    use aov_ir::examples::{example1, example2, example4};
    use aov_linalg::AffineExpr;

    fn transforms_for(p: &Program, vectors: &[OccupancyVector]) -> Vec<StorageTransform> {
        vectors
            .iter()
            .enumerate()
            .map(|(aidx, v)| {
                StorageTransform::new(p, aov_ir::ArrayId(aidx), v).expect("transformable")
            })
            .collect()
    }

    /// The AOV must preserve semantics under *several* legal schedules.
    #[test]
    fn example1_aov_semantics_across_schedules() {
        let p = example1();
        let aov = problems::aov(&p).unwrap();
        let ts = transforms_for(&p, aov.vectors());
        for theta in [
            AffineExpr::from_i64(&[0, 1, 0, 0], 0),  // rows
            AffineExpr::from_i64(&[1, 2, 0, 0], 0),  // skew right
            AffineExpr::from_i64(&[-1, 3, 0, 0], 5), // skew left + offset
            AffineExpr::from_i64(&[1, 3, 0, 0], 0),
        ] {
            let s = Schedule::uniform_for(&p, &[theta]);
            assert!(aov_schedule::legal::is_legal(&p, &s), "test schedule legal");
            assert!(
                semantics_preserved(&p, &[7, 6], &s, &ts),
                "AOV must survive every legal schedule"
            );
        }
    }

    /// A vector valid for one schedule only: works there, breaks
    /// elsewhere.
    #[test]
    fn example1_schedule_specific_vector() {
        let p = example1();
        let v = OccupancyVector::new(vec![0, 1]);
        let ts = transforms_for(&p, &[v]);
        let row = Schedule::uniform_for(&p, &[AffineExpr::from_i64(&[0, 1, 0, 0], 0)]);
        assert!(semantics_preserved(&p, &[6, 5], &row, &ts));
        let skew = Schedule::uniform_for(&p, &[AffineExpr::from_i64(&[1, 2, 0, 0], 0)]);
        assert!(!semantics_preserved(&p, &[6, 5], &skew, &ts));
    }

    #[test]
    fn example2_aov_semantics() {
        let p = example2();
        let aov = problems::aov(&p).unwrap();
        let ts = transforms_for(&p, aov.vectors());
        for (t1, t2) in [
            (
                AffineExpr::from_i64(&[1, 1, 0, 0], 0),
                AffineExpr::from_i64(&[1, 1, 0, 0], 0),
            ),
            (
                AffineExpr::from_i64(&[2, 2, 0, 0], 0),
                AffineExpr::from_i64(&[2, 2, 0, 0], 1),
            ),
        ] {
            let s = Schedule::uniform_for(&p, &[t1, t2]);
            assert!(aov_schedule::legal::is_legal(&p, &s));
            assert!(semantics_preserved(&p, &[5, 5], &s, &ts));
        }
    }

    /// Example 4 with our sharper AOV (1,0) for A: dynamically safe.
    #[test]
    fn example4_sharp_aov_semantics() {
        let p = example4();
        let aov = problems::aov(&p).unwrap();
        assert_eq!(aov.vector_for("A").unwrap().components(), [1, 0]);
        let ts = transforms_for(&p, aov.vectors());
        let sched = problems::best_schedule_for_ov(&p, aov.vectors()).unwrap();
        assert!(semantics_preserved(&p, &[6], &sched, &ts));
    }

    /// Problem-2 pipeline: storage first, then any schedule from the
    /// storage-constrained polyhedron works.
    #[test]
    fn problem2_schedules_respect_storage_dynamically() {
        let p = example1();
        let v = OccupancyVector::new(vec![0, 2]);
        let ts = transforms_for(&p, std::slice::from_ref(&v));
        let sched = problems::best_schedule_for_ov(&p, &[v]).unwrap();
        assert!(semantics_preserved(&p, &[6, 6], &sched, &ts));
    }
}
