//! Enumeration of the integer points of statement domains for concrete
//! parameter values.

use aov_ir::{Program, StmtId};
use aov_linalg::{AffineExpr, QVector};
use aov_polyhedra::{Constraint, Polyhedron};

/// Fixes the parameter dimensions of a statement-space polyhedron,
/// returning a polyhedron over the iteration dimensions only.
pub fn fix_params(domain: &Polyhedron, depth: usize, params: &[i64]) -> Polyhedron {
    let np = params.len();
    assert_eq!(domain.dim(), depth + np, "domain space mismatch");
    // Substitution: iter_k -> iter_k (over depth dims), param_j -> const.
    let mut subs: Vec<AffineExpr> = (0..depth).map(|k| AffineExpr::var(depth, k)).collect();
    for &v in params {
        subs.push(AffineExpr::constant(depth, v.into()));
    }
    Polyhedron::from_constraints(
        depth,
        domain
            .constraints()
            .iter()
            .map(|c| {
                let e = c.expr().substitute(&subs);
                if c.is_equality() {
                    Constraint::eq0(e)
                } else {
                    Constraint::ge0(e)
                }
            })
            .collect(),
    )
}

/// All integer points of a statement's iteration domain for the given
/// parameter values, enumerated over the domain's bounding box.
///
/// # Panics
///
/// Panics if the domain is unbounded (statement domains in this IR are
/// polytopes once parameters are fixed).
pub fn iteration_points(p: &Program, s: StmtId, params: &[i64]) -> Vec<Vec<i64>> {
    let st = p.statement(s);
    let fixed = fix_params(st.domain(), st.depth(), params);
    if fixed.is_empty() {
        return Vec::new();
    }
    let depth = st.depth();
    let mut lo = Vec::with_capacity(depth);
    let mut hi = Vec::with_capacity(depth);
    for k in 0..depth {
        let x = AffineExpr::var(depth, k);
        let min = fixed
            .minimum(&x)
            .expect("statement domain bounded below")
            .ceil()
            .to_i64()
            .expect("small domain bound");
        let max = fixed
            .maximum(&x)
            .expect("statement domain bounded above")
            .floor()
            .to_i64()
            .expect("small domain bound");
        lo.push(min);
        hi.push(max);
    }
    let mut out = Vec::new();
    let mut cur = lo.clone();
    'outer: loop {
        let pt = QVector::from_i64(&cur);
        if fixed.contains(&pt) {
            out.push(cur.clone());
        }
        // Odometer increment.
        for k in (0..depth).rev() {
            if cur[k] < hi[k] {
                cur[k] += 1;
                for (j, c) in cur.iter_mut().enumerate().skip(k + 1) {
                    *c = lo[j];
                }
                continue 'outer;
            }
        }
        break;
    }
    out
}

/// Whether any writer of `array` covers `index` for the given parameters
/// (i.e. the cell is produced by the program rather than input data).
pub fn written_by_program(
    p: &Program,
    array: aov_ir::ArrayId,
    index: &[i64],
    params: &[i64],
) -> bool {
    p.writers_of(array).into_iter().any(|w| {
        let st = p.statement(w);
        if st.depth() != index.len() {
            return false;
        }
        let fixed = fix_params(st.domain(), st.depth(), params);
        fixed.contains(&QVector::from_i64(index))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aov_ir::examples::{example1, example3};

    #[test]
    fn rectangle_enumeration() {
        let p = example1();
        let pts = iteration_points(&p, StmtId(0), &[3, 2]);
        assert_eq!(pts.len(), 6); // 3 × 2
        assert!(pts.contains(&vec![1, 1]));
        assert!(pts.contains(&vec![3, 2]));
        assert!(!pts.contains(&vec![4, 1]));
    }

    #[test]
    fn boundary_statement_enumeration() {
        let p = example3();
        let s1a = p.stmt_by_name("S1a").unwrap();
        // i == 1 plane with jmax=3, kmax=4 (imax=5): 3 * 4 points.
        let pts = iteration_points(&p, s1a, &[5, 3, 4]);
        assert_eq!(pts.len(), 12);
        assert!(pts.iter().all(|pt| pt[0] == 1));
    }

    #[test]
    fn empty_domain() {
        let p = example3();
        let s2 = p.stmt_by_name("S2").unwrap();
        // imax = 1 < 2: interior empty.
        let pts = iteration_points(&p, s2, &[1, 5, 5]);
        assert!(pts.is_empty());
    }

    #[test]
    fn written_by_program_boundaries() {
        let p = example1();
        let a = p.array_by_name("A").unwrap();
        assert!(written_by_program(&p, a, &[1, 1], &[4, 4]));
        assert!(written_by_program(&p, a, &[4, 4], &[4, 4]));
        assert!(!written_by_program(&p, a, &[0, 1], &[4, 4])); // boundary read
        assert!(!written_by_program(&p, a, &[5, 1], &[4, 4]));
    }
}
