//! Dynamic semantics for the `aov` workspace: execute programs over
//! concrete inputs, under affine schedules, with original or
//! occupancy-vector-transformed storage — and compare.
//!
//! This is the ground truth behind the static analyses: an occupancy
//! vector is valid for a schedule iff the transformed execution computes
//! the same value for *every statement instance* as the original
//! (paper §3.2: "transforming A under v everywhere in the program does
//! not change the semantics"). Uninterpreted function symbols are given
//! deterministic hash-mixing semantics so that any mis-ordered or
//! clobbered read almost surely changes an observable value.
//!
//! * [`funcs::apply`] — function-symbol semantics (`add`, `min`, `max`
//!   exact; everything else hash-mixed),
//! * [`exec::run_scheduled`] — two-phase (reads before writes, §4.3)
//!   time-stepped execution under a schedule,
//! * [`exec::reference_values`] — per-instance reference values
//!   (original storage, any legal schedule — single assignment makes the
//!   result schedule-independent),
//! * [`validate::semantics_preserved`] — the equivalence oracle used by
//!   the test-suite to confirm/refute occupancy vectors dynamically.
//!
//! # Examples
//!
//! ```
//! use aov_ir::examples::example1;
//! use aov_core::{transform::StorageTransform, OccupancyVector};
//! use aov_schedule::{Schedule};
//! use aov_linalg::AffineExpr;
//!
//! let p = example1();
//! let row = Schedule::uniform_for(&p, &[AffineExpr::from_i64(&[0, 1, 0, 0], 0)]);
//! let a = p.array_by_name("A").unwrap();
//! let t = StorageTransform::new(&p, a, &OccupancyVector::new(vec![0, 1])).unwrap();
//! // Figure 3: v = (0,1) is valid for the row schedule — semantics hold.
//! assert!(aov_interp::validate::semantics_preserved(&p, &[6, 6], &row, &[t]));
//! ```

pub mod domain;
pub mod exec;
pub mod funcs;
pub mod store;
pub mod validate;
