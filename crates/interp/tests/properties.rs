//! Property tests for the dynamic oracle: valid occupancy vectors never
//! change semantics across random legal schedules and problem sizes;
//! stats are consistent.

use aov_core::{transform::StorageTransform, OccupancyVector};
use aov_interp::exec::{reference_values, run_scheduled};
use aov_interp::store::StorageMode;
use aov_interp::validate::semantics_preserved;
use aov_ir::examples::{example1, heat1d};
use aov_linalg::AffineExpr;
use aov_schedule::{legal, Schedule};
use aov_support::{prop_assume, props};

props! {
    #![cases = 24, seed = 0x1A7E_0CA5]

    /// For Example 1's AOV (1,2): any legal random schedule plus any
    /// small problem size preserves semantics.
    fn aov_survives_random_legal_schedules(g) {
        let a = g.i64_in(-2, 2);
        let b = g.i64_in(1, 4);
        let c = g.i64_in(-3, 3);
        let n = g.i64_in(2, 7);
        let m = g.i64_in(2, 7);
        let p = example1();
        let s = Schedule::uniform_for(&p, &[AffineExpr::from_i64(&[a, b, 0, 0], c)]);
        prop_assume!(legal::is_legal(&p, &s));
        let arr = p.array_by_name("A").unwrap();
        let t = StorageTransform::new(&p, arr, &OccupancyVector::new(vec![1, 2])).unwrap();
        assert!(semantics_preserved(&p, &[n, m], &s, &[t]));
    }

    /// Original-storage runs are schedule-independent (single
    /// assignment): any two legal schedules give identical values.
    fn original_storage_confluence(g) {
        let a1 = g.i64_in(-2, 2);
        let b1 = g.i64_in(1, 4);
        let a2 = g.i64_in(-2, 2);
        let b2 = g.i64_in(1, 4);
        let n = g.i64_in(2, 6);
        let m = g.i64_in(2, 6);
        let p = heat1d();
        let s1 = Schedule::uniform_for(&p, &[AffineExpr::from_i64(&[a1, b1, 0, 0], 0)]);
        let s2 = Schedule::uniform_for(&p, &[AffineExpr::from_i64(&[a2, b2, 0, 0], 0)]);
        prop_assume!(legal::is_legal(&p, &s1) && legal::is_legal(&p, &s2));
        let modes1: Vec<StorageMode<'_>> =
            p.arrays().iter().map(|_| StorageMode::Original).collect();
        let modes2: Vec<StorageMode<'_>> =
            p.arrays().iter().map(|_| StorageMode::Original).collect();
        let (v1, _) = run_scheduled(&p, &[n, m], &s1, &modes1);
        let (v2, _) = run_scheduled(&p, &[n, m], &s2, &modes2);
        assert_eq!(v1, v2);
    }

    /// Run statistics are structurally consistent: instance counts match
    /// the domain size; max_width * time_steps >= instances.
    fn run_stats_consistent(g) {
        let n = g.i64_in(1, 8);
        let m = g.i64_in(1, 8);
        let p = example1();
        let s = Schedule::uniform_for(&p, &[AffineExpr::from_i64(&[0, 1, 0, 0], 0)]);
        let modes: Vec<StorageMode<'_>> =
            p.arrays().iter().map(|_| StorageMode::Original).collect();
        let (vals, stats) = run_scheduled(&p, &[n, m], &s, &modes);
        assert_eq!(stats.instances, (n * m) as usize);
        assert_eq!(vals.len(), stats.instances);
        assert_eq!(stats.time_steps, m as usize);
        assert_eq!(stats.max_width, n as usize);
        assert!(stats.max_width * stats.time_steps >= stats.instances);
        // Original storage uses exactly one cell per instance.
        assert_eq!(stats.cells_used, vec![(n * m) as usize]);
        // Reference agrees with itself (determinism).
        assert_eq!(reference_values(&p, &[n, m]), reference_values(&p, &[n, m]));
    }
}
