//! The benchmark observatory: one suite run → one versioned
//! `BENCH_<n>.json` artifact.
//!
//! A suite runs every requested example through the instrumented
//! [`Pipeline`] (LP memoization on). The *first* run per example is
//! traced — its `aov-trace` span aggregates, solver-counter deltas and
//! result digests go into the artifact — and the remaining `runs − 1`
//! repetitions run untraced, purely for timing. Wall and per-stage
//! times are summarized as min/median ([`Stat`]) across all runs, so a
//! baseline records the best observed time rather than one noisy
//! sample. The figure suite then reuses the traced reports through
//! [`FigureCtx::from_reports`] (Example 3's AOV is computed once per
//! suite) and each figure's rendered text is fingerprinted with FNV-1a,
//! turning the artifact into a correctness tripwire as well as a
//! performance record.
//!
//! The artifact shape is versioned ([`SCHEMA_VERSION`]) and structurally
//! checked ([`artifact_schema`]); `aov bench --check FILE` and the CI
//! smoke step validate written files against it. [`crate::regress`]
//! compares two artifacts.
//!
//! # Measurement integrity (`aov-bench/2`)
//!
//! Version 2 artifacts additionally record *how* the numbers were
//! taken: a [`Calibration`] block (machine-speed microprobes measured
//! right before the suite ran, so comparisons across artifacts can
//! normalize away container speed drift) and an `environment` block
//! (worker count, allocator/recorder arming, ring capacity, and the
//! digest of each program measured — the context a number is
//! meaningless without). Version 1 artifacts (`BENCH_0`–`BENCH_3`)
//! stay readable through [`upgrade`], which grafts a neutral
//! calibration and a best-effort environment onto the parsed document.

use std::time::Instant;

use crate::{default_workers, figure_specs, reject_degraded, FigureCtx, EXAMPLES};
use aov_engine::{BudgetSpec, EngineError, Pipeline, Report, Stat};
use aov_support::calibrate::Calibration;
use aov_support::digest::fnv1a_hex;
use aov_support::schema::{self, Schema};
use aov_support::{Json, ToJson};

/// Artifact format identifier; bump on breaking shape changes.
pub const SCHEMA_VERSION: &str = "aov-bench/2";

/// The previous artifact format, still accepted via [`upgrade`].
pub const SCHEMA_VERSION_V1: &str = "aov-bench/1";

/// What to run and how often.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Example programs to benchmark (subset of `example1..example4`).
    pub examples: Vec<String>,
    /// Pipeline repetitions per example (min/median over all of them).
    pub runs: usize,
    /// Worker threads for the per-orthant solver fan-out.
    pub workers: usize,
    /// Run the machine-model figures at reduced problem sizes (the CI
    /// smoke setting); analysis figures are unaffected.
    pub quick: bool,
    /// Whether to run the figure suite at all.
    pub figures: bool,
    /// Span-aggregate rows kept per example (top by self time).
    pub span_rows: usize,
    /// Solver budget applied to every pipeline run. A tripped budget
    /// degrades the run, and [`run_suite`] rejects degraded runs rather
    /// than recording partial numbers.
    pub budget: BudgetSpec,
    /// When set, one `aov-profile/1` document per example
    /// (`profile_<example>.json`, built from the traced first run) is
    /// written into this directory for `aov pdiff` to consume.
    pub profile_dir: Option<std::path::PathBuf>,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            examples: EXAMPLES.iter().map(|s| (*s).to_string()).collect(),
            runs: 1,
            workers: default_workers(),
            quick: false,
            figures: true,
            // Raised from 24 when the p2.* polyhedral spans landed:
            // ~15 new rows per example would otherwise crowd the
            // pipeline stage rows out of the top-by-self-time list and
            // break baseline continuity (spans present in an old
            // artifact going "missing" in the new one).
            span_rows: 48,
            budget: BudgetSpec::default(),
            profile_dir: None,
        }
    }
}

/// Everything the observatory records about one example's pipeline runs.
#[derive(Debug, Clone)]
pub struct ExampleBench {
    pub program: String,
    /// Repetitions aggregated into the timing stats.
    pub runs: usize,
    /// Whole-pipeline wall clock, microseconds.
    pub wall_us: Stat,
    /// Per-stage wall clock, microseconds, in stage order.
    pub stages: Vec<(String, Stat)>,
    /// Span aggregates of the traced first run (flame-table rows).
    pub spans: Json,
    /// Solver-counter increments of the traced first run.
    pub counters: Vec<(String, u64)>,
    pub memo_hits: u64,
    pub memo_misses: u64,
    pub memo_hit_rate: Option<f64>,
    /// AOV per array, `(array, components)`.
    pub aov: Vec<(String, Vec<i64>)>,
    /// Dynamic equivalence verdict.
    pub equivalent: bool,
    /// FNV-1a fingerprint of the transformed code.
    pub code_digest: String,
    /// Allocator traffic of the traced first run (`allocs`, `bytes`,
    /// `peak`, `max_bits` object): telemetry-armed artifacts carry it,
    /// older `aov-bench/1` baselines simply lack the key.
    pub alloc: Json,
}

impl ExampleBench {
    /// Aggregates the traced first run and the untraced repetitions.
    /// The caller has already rejected degraded reports, so the result
    /// fields (`aov`, `equivalent`, `code`) are all present.
    fn collect(first: &Report, rest: &[Report], spans: Json, alloc: Json) -> ExampleBench {
        let all = || std::iter::once(first).chain(rest.iter());
        let wall_us = Stat::of(all().map(|r| r.total_micros).collect());
        let stages = first
            .stages
            .iter()
            .map(|s| {
                let sample = all()
                    .map(|r| r.stage(s.name).map_or(0, |x| x.micros))
                    .collect();
                (s.name.to_string(), Stat::of(sample))
            })
            .collect();
        let aov = first
            .arrays
            .iter()
            .cloned()
            .zip(
                first
                    .aov
                    .as_ref()
                    .expect("healthy run has an AOV")
                    .vectors()
                    .iter()
                    .map(|v| v.components().to_vec()),
            )
            .collect();
        ExampleBench {
            program: first.program.clone(),
            runs: 1 + rest.len(),
            wall_us,
            stages,
            spans,
            counters: first.counters.clone(),
            memo_hits: first.counter("lp.memo.hits"),
            memo_misses: first.counter("lp.memo.misses"),
            memo_hit_rate: first.memo_hit_rate(),
            aov,
            equivalent: first.equivalent.expect("healthy run ran equivalence"),
            code_digest: fnv1a_hex(
                first
                    .code
                    .as_ref()
                    .expect("healthy run generated code")
                    .as_bytes(),
            ),
            alloc,
        }
    }
}

impl ToJson for ExampleBench {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("program", self.program.as_str())
            .field("runs", self.runs)
            .field("wall_us", self.wall_us.to_json())
            .field(
                "stages",
                self.stages
                    .iter()
                    .map(|(name, stat)| {
                        Json::obj()
                            .field("name", name.as_str())
                            .field("us", stat.to_json())
                    })
                    .collect::<Vec<_>>(),
            )
            .field("spans", self.spans.clone())
            .field(
                "counters",
                self.counters
                    .iter()
                    .map(|(k, v)| Json::obj().field("name", k.as_str()).field("count", *v))
                    .collect::<Vec<_>>(),
            )
            .field(
                "memo",
                Json::obj()
                    .field("hits", self.memo_hits)
                    .field("misses", self.memo_misses)
                    .field(
                        "hit_rate",
                        self.memo_hit_rate.map_or(Json::Null, Json::Float),
                    ),
            )
            .field(
                "aov",
                self.aov
                    .iter()
                    .map(|(array, v)| {
                        Json::obj().field("array", array.as_str()).field(
                            "vector",
                            v.iter().map(|&c| Json::Int(c)).collect::<Vec<_>>(),
                        )
                    })
                    .collect::<Vec<_>>(),
            )
            .field("equivalent", self.equivalent)
            .field("code_digest", self.code_digest.as_str())
            .field("alloc", self.alloc.clone())
    }
}

/// One figure's cost and fingerprint within a suite run.
#[derive(Debug, Clone)]
pub struct FigureBench {
    pub id: String,
    /// Wall clock of regenerating the figure, microseconds.
    pub us: u128,
    pub reproduced: bool,
    /// FNV-1a fingerprint of the rendered report text.
    pub digest: String,
}

impl ToJson for FigureBench {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("id", self.id.as_str())
            .field("us", self.us as i64)
            .field("reproduced", self.reproduced)
            .field("digest", self.digest.as_str())
    }
}

/// One suite run's complete record — serialize with [`ToJson`] to get a
/// `BENCH_<n>.json` document.
#[derive(Debug, Clone)]
pub struct Artifact {
    pub runs: usize,
    pub workers: usize,
    pub quick: bool,
    pub figures_enabled: bool,
    /// Machine-speed microprobes measured right before the suite ran;
    /// [`Calibration::neutral`] on artifacts upgraded from v1.
    pub calibration: Calibration,
    /// Recording-time context: worker count, allocator/recorder arming,
    /// ring capacity, per-program digests. See [`environment_schema`].
    pub environment: Json,
    pub examples: Vec<ExampleBench>,
    pub figures: Vec<FigureBench>,
    /// Load-test summary from `aov bench --serve-clients N` (an
    /// `aov-serve/1` loadtest document). Gate-neutral: absent unless
    /// the flag was given, and no regression comparison reads it.
    pub serve: Option<Json>,
}

impl ToJson for Artifact {
    fn to_json(&self) -> Json {
        let serve = self.serve.clone();
        let doc = Json::obj()
            .field("schema", SCHEMA_VERSION)
            .field(
                "suite",
                Json::obj()
                    .field("runs", self.runs)
                    .field("workers", self.workers)
                    .field("quick", self.quick)
                    .field("figures", self.figures_enabled)
                    .field(
                        "examples",
                        self.examples
                            .iter()
                            .map(|e| Json::from(e.program.as_str()))
                            .collect::<Vec<_>>(),
                    ),
            )
            .field("calibration", self.calibration.to_json())
            .field("environment", self.environment.clone())
            .field("examples", self.examples.to_json())
            .field("figures", self.figures.to_json());
        match serve {
            Some(summary) => doc.field("serve", summary),
            None => doc,
        }
    }
}

/// Runs the configured suite and collects the artifact.
///
/// # Errors
///
/// The first pipeline failure, as [`EngineError`] — including runs that
/// merely *degraded* (tripped budget, injected fault, unschedulable
/// input): a baseline built from partial results would poison every
/// later regression comparison, so degraded runs are rejected outright.
pub fn run_suite(cfg: &SuiteConfig) -> Result<Artifact, EngineError> {
    // Calibrate before the suite: the microprobes cost a fraction of a
    // second and fingerprint the machine speed the timings below were
    // taken at.
    let calibration = Calibration::measure();
    let mut programs: Vec<Json> = Vec::new();
    let mut examples: Vec<ExampleBench> = Vec::new();
    let mut first_reports: Vec<Report> = Vec::new();
    for name in &cfg.examples {
        let pipeline = Pipeline::for_example(name)?
            .workers(cfg.workers)
            .memoize(true)
            .budget(cfg.budget);
        programs.push(
            Json::obj()
                .field("name", name.as_str())
                .field("digest", pipeline.program_digest().as_str()),
        );
        // Traced first run: span attribution, counters, digests, and
        // the allocator/numeric-growth telemetry of one full pass.
        aov_trace::clear();
        aov_trace::set_enabled(true);
        let alloc_before = aov_support::alloc::stats();
        aov_support::alloc::reset_peak();
        let outcome = pipeline.run();
        let alloc_after = aov_support::alloc::stats();
        aov_trace::set_enabled(false);
        let records = aov_trace::drain();
        let first = outcome?;
        reject_degraded(name, &first)?;
        if let Some(dir) = &cfg.profile_dir {
            let doc =
                aov_engine::profile::build_profile(&first, &records, &pipeline.program_digest());
            std::fs::create_dir_all(dir).map_err(|e| {
                EngineError::Unsupported(format!("cannot create profile dir {dir:?}: {e}"))
            })?;
            let path = dir.join(format!("profile_{name}.json"));
            std::fs::write(&path, format!("{}\n", doc.to_pretty())).map_err(|e| {
                EngineError::Unsupported(format!("cannot write profile {path:?}: {e}"))
            })?;
        }
        let spans = aov_trace::metrics::span_aggregates(&records, cfg.span_rows);
        let alloc = Json::obj()
            .field("allocs", alloc_after.allocs - alloc_before.allocs)
            .field("bytes", alloc_after.bytes - alloc_before.bytes)
            .field("peak", alloc_after.peak.max(0))
            .field("max_bits", alloc_after.max_bits)
            .field("recorder_events", aov_trace::recorder::events_recorded());
        // Untraced repetitions: timing only (tracing overhead excluded).
        let mut rest = Vec::new();
        for _ in 1..cfg.runs {
            rest.push(pipeline.run()?);
        }
        examples.push(ExampleBench::collect(&first, &rest, spans, alloc));
        first_reports.push(first);
    }

    let ctx = FigureCtx::from_reports(cfg.workers, first_reports);
    let mut figures = Vec::new();
    if cfg.figures {
        for spec in figure_specs() {
            if !spec.needs.iter().all(|n| ctx.has(n)) {
                continue;
            }
            let t0 = Instant::now();
            let report = (spec.run)(&ctx, !cfg.quick);
            figures.push(FigureBench {
                id: spec.id.to_string(),
                us: t0.elapsed().as_micros(),
                reproduced: report.reproduced,
                digest: fnv1a_hex(report.render().as_bytes()),
            });
        }
    }

    let environment = Json::obj()
        .field("workers", cfg.workers)
        .field("alloc_counting", aov_support::alloc::counting())
        .field("recorder_recording", aov_trace::recorder::recording())
        .field("recorder_slots", aov_trace::recorder::slots())
        .field("programs", programs);

    Ok(Artifact {
        runs: cfg.runs,
        workers: cfg.workers,
        quick: cfg.quick,
        figures_enabled: cfg.figures,
        calibration,
        environment,
        examples,
        figures,
        serve: None,
    })
}

/// The structural schema of a v2 artifact's `environment` block. The
/// arming flags and ring capacity are nullable because artifacts
/// upgraded from v1 never recorded them.
fn environment_schema() -> Schema {
    Schema::object([
        ("workers", Schema::Int, true),
        ("alloc_counting", Schema::nullable(Schema::Bool), true),
        ("recorder_recording", Schema::nullable(Schema::Bool), true),
        ("recorder_slots", Schema::nullable(Schema::Int), true),
        (
            "programs",
            Schema::array(Schema::object([
                ("name", Schema::Str, true),
                ("digest", Schema::Str, true),
            ])),
            true,
        ),
    ])
}

/// The structural schema of a v2 artifact's `calibration` block
/// (written by [`Calibration`]'s `ToJson`; probe fields are null when
/// neutral).
fn calibration_schema() -> Schema {
    Schema::object([
        ("measured", Schema::Bool, true),
        ("cpu_ns", Schema::nullable(Schema::Num), true),
        ("alloc_ns", Schema::nullable(Schema::Num), true),
        ("bigint_ns", Schema::nullable(Schema::Num), true),
        ("score", Schema::nullable(Schema::Num), true),
    ])
}

/// Upgrades a parsed artifact document to the current schema version.
///
/// `aov-bench/2` documents pass through unchanged. `aov-bench/1`
/// documents (the BENCH_0–BENCH_3 era) gain what v2 requires:
///
/// * a **neutral** `calibration` block — v1 never measured the machine,
///   and pretending otherwise would poison normalization, so consumers
///   see `measured: false` and fall back to data-derived estimates;
/// * a best-effort `environment` block — the worker count comes from
///   the recorded suite config, the per-program digests from each
///   example's `code_digest`, and the arming flags read null (unknown);
/// * an `upgraded_from` marker naming the original version.
///
/// # Errors
///
/// A message naming the offending schema tag when the document is not a
/// recognized artifact version (or has no schema tag at all).
pub fn upgrade(doc: Json) -> Result<(Json, bool), String> {
    match doc.get("schema") {
        Some(Json::Str(tag)) if tag == SCHEMA_VERSION => Ok((doc, false)),
        Some(Json::Str(tag)) if tag == SCHEMA_VERSION_V1 => {
            let workers = doc
                .get("suite")
                .and_then(|s| s.get("workers"))
                .cloned()
                .unwrap_or(Json::Null);
            let programs: Vec<Json> = match doc.get("examples") {
                Some(Json::Arr(examples)) => examples
                    .iter()
                    .filter_map(|e| {
                        let name = e.get("program")?.clone();
                        let digest = e.get("code_digest")?.clone();
                        Some(Json::obj().field("name", name).field("digest", digest))
                    })
                    .collect(),
                _ => Vec::new(),
            };
            let environment = Json::obj()
                .field("workers", workers)
                .field("alloc_counting", Json::Null)
                .field("recorder_recording", Json::Null)
                .field("recorder_slots", Json::Null)
                .field("programs", programs);
            let Json::Obj(mut fields) = doc else {
                return Err("artifact document is not an object".to_string());
            };
            for (key, value) in &mut fields {
                if key == "schema" {
                    *value = Json::Str(SCHEMA_VERSION.to_string());
                }
            }
            fields.push((
                "calibration".to_string(),
                Calibration::neutral().to_json(),
            ));
            fields.push(("environment".to_string(), environment));
            fields.push((
                "upgraded_from".to_string(),
                Json::Str(SCHEMA_VERSION_V1.to_string()),
            ));
            Ok((Json::Obj(fields), true))
        }
        Some(Json::Str(tag)) => Err(format!(
            "unrecognized artifact schema {tag:?} (expected {SCHEMA_VERSION} or {SCHEMA_VERSION_V1})"
        )),
        _ => Err("artifact document has no schema tag".to_string()),
    }
}

/// The structural schema every `BENCH_*.json` document must satisfy.
pub fn artifact_schema() -> Schema {
    let stat = Schema::object([("min", Schema::Int, true), ("median", Schema::Int, true)]);
    Schema::object([
        ("schema", Schema::Str, true),
        (
            "suite",
            Schema::object([
                ("runs", Schema::Int, true),
                ("workers", Schema::Int, true),
                ("quick", Schema::Bool, true),
                ("figures", Schema::Bool, true),
                ("examples", Schema::array(Schema::Str), true),
            ]),
            true,
        ),
        ("calibration", calibration_schema(), true),
        ("environment", environment_schema(), true),
        // Present only on documents [`upgrade`]d from an older version.
        ("upgraded_from", Schema::Str, false),
        // Present only when `--serve-clients` ran a load-test campaign.
        // Kept open-shaped: the loadtest document is informational and
        // gate-neutral, and its fields may grow without a bench bump.
        ("serve", Schema::Any, false),
        (
            "examples",
            Schema::array(Schema::object([
                ("program", Schema::Str, true),
                ("runs", Schema::Int, true),
                ("wall_us", stat.clone(), true),
                (
                    "stages",
                    Schema::array(Schema::object([
                        ("name", Schema::Str, true),
                        ("us", stat, true),
                    ])),
                    true,
                ),
                (
                    "spans",
                    Schema::array(Schema::object([
                        ("name", Schema::Str, true),
                        ("count", Schema::Int, true),
                        ("total_ns", Schema::Int, true),
                        ("self_ns", Schema::Int, true),
                    ])),
                    true,
                ),
                (
                    "counters",
                    Schema::array(Schema::object([
                        ("name", Schema::Str, true),
                        ("count", Schema::Int, true),
                    ])),
                    true,
                ),
                (
                    "memo",
                    Schema::object([
                        ("hits", Schema::Int, true),
                        ("misses", Schema::Int, true),
                        ("hit_rate", Schema::nullable(Schema::Num), true),
                    ]),
                    true,
                ),
                (
                    "aov",
                    Schema::array(Schema::object([
                        ("array", Schema::Str, true),
                        ("vector", Schema::array(Schema::Int), true),
                    ])),
                    true,
                ),
                ("equivalent", Schema::Bool, true),
                ("code_digest", Schema::Str, true),
                // Optional: telemetry-armed artifacts carry allocator
                // traffic; pre-telemetry baselines (BENCH_1) lack it
                // and must keep validating.
                (
                    "alloc",
                    Schema::object([
                        ("allocs", Schema::Int, true),
                        ("bytes", Schema::Int, true),
                        ("peak", Schema::Int, true),
                        ("max_bits", Schema::Int, true),
                        ("recorder_events", Schema::Int, true),
                    ]),
                    false,
                ),
            ])),
            true,
        ),
        (
            "figures",
            Schema::array(Schema::object([
                ("id", Schema::Str, true),
                ("us", Schema::Int, true),
                ("reproduced", Schema::Bool, true),
                ("digest", Schema::Str, true),
            ])),
            true,
        ),
    ])
}

/// Validates a parsed artifact document against [`artifact_schema`].
///
/// # Errors
///
/// Every structural mismatch, with its JSON path.
pub fn validate(doc: &Json) -> Result<(), Vec<String>> {
    schema::validate(doc, &artifact_schema())
}
