//! Cross-artifact trend analysis: the repo's perf trajectory, not just
//! pairwise snapshots.
//!
//! `aov trend BENCH_0.json … BENCH_N.json` flattens every artifact with
//! [`crate::regress::flatten`] into per-metric series, normalizes each
//! artifact's Time metrics onto the *first* artifact's machine speed
//! (the same [`Drift`] resolution the pairwise gate uses: measured
//! calibration when both sides have it, the median-ratio estimate for
//! v1-era artifacts, neutral otherwise), and classifies every series:
//!
//! * **Flat** — no movement beyond the tolerance band.
//! * **Step** — the movement concentrates at one artifact boundary:
//!   the best median split's jump is carried by a single consecutive
//!   transition. Steps are what code changes look like.
//! * **Drift** — significant movement spread across the series. Drift
//!   across *normalized* values is what residual environment noise (or
//!   a slow leak) looks like.
//!
//! The classifier is median-based on purpose: medians of the two sides
//! of a split are robust to one noisy recording, so a single outlier
//! artifact reads as Flat, not as two steps.
//!
//! The report groups series by kind (wall clocks, stage times, span
//! self-times, counters, …) with one sparkline per series; the emitted
//! document is schema-versioned ([`SCHEMA_VERSION`]) and `aov inspect`
//! validates and renders it like every other artifact in the repo.

use crate::regress::{flatten, Drift, DriftSource, Metric, MetricClass, Tolerance};
use aov_support::calibrate::Calibration;
use aov_support::schema::{self, Schema};
use aov_support::{Json, ToJson};

/// Trend document format identifier.
pub const SCHEMA_VERSION: &str = "aov-trend/1";

/// One artifact in the analyzed sequence.
#[derive(Debug, Clone)]
pub struct ArtifactInfo {
    /// Display label (the file name, for CLI runs).
    pub label: String,
    /// Whether the artifact carried a measured calibration.
    pub calibrated: bool,
    /// Time normalization factor onto the first artifact's machine
    /// (1.0 for the first artifact itself).
    pub drift: Drift,
}

/// How one metric's series moved across the sequence.
#[derive(Debug, Clone, PartialEq)]
pub enum Change {
    /// Within the tolerance band end to end.
    Flat,
    /// Movement concentrated at one artifact boundary: `ratio` is the
    /// right-side median over the left-side median, `at` the index of
    /// the first artifact after the step.
    Step { at: usize, ratio: f64 },
    /// Significant movement spread across the series.
    Drift { ratio: f64 },
}

/// One metric followed across every artifact. `points[i]` is `None`
/// when artifact `i` did not measure the metric.
#[derive(Debug, Clone)]
pub struct Series {
    pub key: String,
    pub class: MetricClass,
    /// `(raw, normalized)` per artifact; Count metrics have
    /// `raw == normalized` (machine speed cannot move them).
    pub points: Vec<Option<(f64, f64)>>,
    pub change: Change,
}

/// A full trend analysis.
#[derive(Debug, Clone)]
pub struct Trend {
    pub artifacts: Vec<ArtifactInfo>,
    /// Numeric (Time/Count) series, in first-seen key order.
    pub series: Vec<Series>,
    /// Exact-class metrics tracked: `(key, flips)` where a flip is a
    /// value change between consecutive measured artifacts. Digests
    /// flipping across recordings of the same code is a correctness
    /// alarm the sparklines cannot show.
    pub exact_flips: Vec<(String, usize)>,
}

/// Classifies one series of normalized values (`None` = not measured).
///
/// Median-based step-vs-drift detection: the split of the series whose
/// side medians differ the most is the candidate change point; it only
/// counts when it clears both the relative band and the absolute floor
/// (same double test as the pairwise gate). A significant split whose
/// movement is carried by the single transition at the boundary is a
/// [`Change::Step`]; significant movement without such a carrier is
/// [`Change::Drift`].
fn classify(points: &[Option<f64>], rel: f64, floor: f64) -> Change {
    let present: Vec<(usize, f64)> = points
        .iter()
        .enumerate()
        .filter_map(|(i, p)| p.map(|v| (i, v)))
        .collect();
    if present.len() < 2 {
        return Change::Flat;
    }
    let values: Vec<f64> = present.iter().map(|&(_, v)| v).collect();
    let median = |xs: &[f64]| -> f64 {
        let mut s = xs.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let mid = s.len() / 2;
        if s.len().is_multiple_of(2) {
            (s[mid - 1] + s[mid]) / 2.0
        } else {
            s[mid]
        }
    };
    let splits: Vec<(usize, f64, f64, f64)> = (1..values.len())
        .map(|t| {
            let (ml, mr) = (median(&values[..t]), median(&values[t..]));
            let movement = if ml > 0.0 && mr > 0.0 {
                (mr / ml).ln().abs()
            } else {
                (mr - ml).abs()
            };
            (t, ml, mr, movement)
        })
        .collect();
    let best_movement = splits.iter().map(|&(_, _, _, m)| m).fold(0.0f64, f64::max);
    // Among the maximal-movement splits (a step plateau produces several
    // with identical side medians), the one sitting on the largest
    // consecutive jump is the actual boundary.
    let boundary_jump = |t: usize| -> f64 {
        let (a, b) = (values[t - 1], values[t]);
        if a > 0.0 && b > 0.0 {
            (b / a).ln().abs()
        } else {
            (b - a).abs()
        }
    };
    let (split, ml, mr, _) = splits
        .iter()
        .copied()
        .filter(|&(_, _, _, m)| m >= best_movement - 1e-9)
        .max_by(|&(ta, ..), &(tb, ..)| {
            boundary_jump(ta)
                .partial_cmp(&boundary_jump(tb))
                .expect("finite jumps")
        })
        .expect("at least one split");
    let ratio = if ml > 0.0 { mr / ml } else { f64::INFINITY };
    let significant = (mr - ml).abs() > floor
        && (ratio > 1.0 + rel || (ratio.is_finite() && 1.0 / ratio > 1.0 + rel));
    if !significant {
        return Change::Flat;
    }
    // Step test: does the single transition at the split carry the
    // split's movement?
    let (jl, jr) = (values[split - 1], values[split]);
    let jump = if jl > 0.0 && jr > 0.0 {
        (jr / jl).ln().abs()
    } else {
        f64::INFINITY
    };
    let split_move = if ratio.is_finite() && ratio > 0.0 {
        ratio.ln().abs()
    } else {
        f64::INFINITY
    };
    if jump >= 0.8 * split_move {
        Change::Step {
            at: present[split].0,
            ratio,
        }
    } else {
        Change::Drift { ratio }
    }
}

/// Analyzes a sequence of **upgraded** artifact documents (callers run
/// [`observatory::upgrade`] first — the CLI does, and it also schema-
/// checks there; like [`crate::regress::compare`], the analysis itself
/// is tolerant of partially-formed documents).
///
/// # Errors
///
/// Fewer than two artifacts (one snapshot has no trajectory).
pub fn analyze(inputs: &[(String, Json)], tol: &Tolerance) -> Result<Trend, String> {
    if inputs.len() < 2 {
        return Err(format!(
            "trend needs at least two artifacts, got {}",
            inputs.len()
        ));
    }
    let flattened: Vec<Vec<Metric>> = inputs.iter().map(|(_, doc)| flatten(doc)).collect();

    // Normalization: every artifact relative to the first.
    let artifacts: Vec<ArtifactInfo> = inputs
        .iter()
        .zip(&flattened)
        .enumerate()
        .map(|(i, ((label, doc), metrics))| {
            let calibrated = Calibration::from_json(doc.get("calibration")).is_measured();
            let drift = if i == 0 {
                Drift::neutral()
            } else {
                Drift::between(&inputs[0].1, doc, &flattened[0], metrics, tol)
            };
            ArtifactInfo {
                label: label.clone(),
                calibrated,
                drift,
            }
        })
        .collect();

    // Per-metric series in first-seen order across all artifacts.
    let mut keys: Vec<(String, MetricClass)> = Vec::new();
    for metrics in &flattened {
        for m in metrics {
            if !keys.iter().any(|(k, _)| *k == m.key) {
                keys.push((m.key.clone(), m.class));
            }
        }
    }

    let value_of = |metrics: &[Metric], key: &str| -> Option<Json> {
        metrics
            .iter()
            .find(|m| m.key == key)
            .map(|m| m.value.clone())
    };
    let as_f64 = |v: &Json| -> Option<f64> {
        match v {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    };

    let mut series = Vec::new();
    let mut exact_flips = Vec::new();
    for (key, class) in keys {
        if class == MetricClass::Exact {
            let observed: Vec<Json> = flattened.iter().filter_map(|m| value_of(m, &key)).collect();
            let flips = observed.windows(2).filter(|w| w[0] != w[1]).count();
            exact_flips.push((key, flips));
            continue;
        }
        let points: Vec<Option<(f64, f64)>> = flattened
            .iter()
            .zip(&artifacts)
            .map(|(metrics, info)| {
                let raw = value_of(metrics, &key).and_then(|v| as_f64(&v))?;
                let normalized = if class == MetricClass::Time {
                    raw / info.drift.factor
                } else {
                    raw
                };
                Some((raw, normalized))
            })
            .collect();
        let (rel, floor) = match class {
            MetricClass::Time => (tol.time_rel, tol.time_floor_us),
            _ => (tol.count_rel, tol.count_floor),
        };
        let normalized: Vec<Option<f64>> = points.iter().map(|p| p.map(|(_, n)| n)).collect();
        let change = classify(&normalized, rel, floor);
        series.push(Series {
            key,
            class,
            points,
            change,
        });
    }

    Ok(Trend {
        artifacts,
        series,
        exact_flips,
    })
}

/// Report group of a metric key, in render order.
fn group_of(key: &str) -> (usize, &'static str) {
    if key.ends_with(".wall_us") {
        (0, "pipeline wall clocks")
    } else if key.contains(".stage.") {
        (1, "stage times")
    } else if key.contains(".span.") && key.ends_with(".self_us") {
        (2, "span self-times")
    } else if key.contains(".span.") && key.ends_with(".count") {
        (3, "span counts")
    } else if key.contains(".counter.") {
        (4, "solver counters")
    } else if key.starts_with("fig.") {
        (5, "figure times")
    } else {
        (6, "other")
    }
}

/// Eight-level sparkline of a series' normalized values, `·` for
/// artifacts that did not measure the metric. Scaled per series from 0
/// to its max, so a flat series of large values renders as a high flat
/// line rather than noise.
fn sparkline(points: &[Option<(f64, f64)>]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = points
        .iter()
        .filter_map(|p| p.map(|(_, n)| n))
        .fold(0.0f64, f64::max);
    points
        .iter()
        .map(|p| match p {
            None => '·',
            Some((_, n)) if max <= 0.0 => BARS[0],
            Some((_, n)) => {
                let idx = ((n / max) * 7.0).round().clamp(0.0, 7.0) as usize;
                BARS[idx]
            }
        })
        .collect()
}

impl Trend {
    /// Number of series with the given change kind.
    fn count_changes(&self, step: bool) -> usize {
        self.series
            .iter()
            .filter(|s| {
                matches!(
                    (&s.change, step),
                    (Change::Step { .. }, true) | (Change::Drift { .. }, false)
                )
            })
            .count()
    }

    /// Series classified [`Change::Flat`].
    #[must_use]
    pub fn flat(&self) -> usize {
        self.series
            .iter()
            .filter(|s| s.change == Change::Flat)
            .count()
    }

    /// Series classified [`Change::Step`].
    #[must_use]
    pub fn steps(&self) -> usize {
        self.count_changes(true)
    }

    /// Series classified [`Change::Drift`].
    #[must_use]
    pub fn drifts(&self) -> usize {
        self.count_changes(false)
    }

    /// Exact-class value changes summed over all tracked fingerprints.
    #[must_use]
    pub fn total_exact_flips(&self) -> usize {
        self.exact_flips.iter().map(|(_, f)| f).sum()
    }

    /// Human-readable grouped sparkline report. Every wall-clock series
    /// renders; other groups render their non-Flat series plus a count
    /// of the flat remainder.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "trend over {} artifacts: {} series ({} flat, {} steps, {} drifts), {} fingerprints ({} flips)\n",
            self.artifacts.len(),
            self.series.len(),
            self.flat(),
            self.steps(),
            self.drifts(),
            self.exact_flips.len(),
            self.total_exact_flips(),
        );
        for info in &self.artifacts {
            out.push_str(&format!(
                "  {:<16} {} drift ×{:.3} ({:?})\n",
                info.label,
                if info.calibrated {
                    "calibrated"
                } else {
                    "uncalibrated"
                },
                info.drift.factor,
                info.drift.source,
            ));
        }
        let describe = |change: &Change| match change {
            Change::Flat => "flat".to_string(),
            Change::Step { at, ratio } => format!("STEP ×{ratio:.2} at #{at}"),
            Change::Drift { ratio } => format!("DRIFT ×{ratio:.2}"),
        };
        for group in 0..7 {
            let members: Vec<&Series> = self
                .series
                .iter()
                .filter(|s| group_of(&s.key).0 == group)
                .collect();
            if members.is_empty() {
                continue;
            }
            let name = group_of(&members[0].key).1;
            let render_all = group == 0;
            let mut rendered = 0usize;
            let mut header_done = false;
            for s in &members {
                if !render_all && s.change == Change::Flat {
                    continue;
                }
                if !header_done {
                    out.push_str(&format!("{name}:\n"));
                    header_done = true;
                }
                out.push_str(&format!(
                    "  {} {:<48} {}\n",
                    sparkline(&s.points),
                    s.key,
                    describe(&s.change)
                ));
                rendered += 1;
            }
            let flat_rest = members.len() - rendered;
            if flat_rest > 0 && header_done && !render_all {
                out.push_str(&format!("  ({flat_rest} more flat series)\n"));
            } else if !header_done {
                out.push_str(&format!("{name}: all {} series flat\n", members.len()));
            }
        }
        if self.total_exact_flips() > 0 {
            out.push_str("fingerprint flips:\n");
            for (key, flips) in self.exact_flips.iter().filter(|(_, f)| *f > 0) {
                out.push_str(&format!("  {key}: {flips} flip(s)\n"));
            }
        }
        out
    }
}

impl ToJson for Trend {
    fn to_json(&self) -> Json {
        let source_name = |s: DriftSource| match s {
            DriftSource::Measured => "measured",
            DriftSource::Estimated => "estimated",
            DriftSource::Neutral => "neutral",
        };
        let class_name = |c: MetricClass| match c {
            MetricClass::Time => "time",
            MetricClass::Count => "count",
            MetricClass::Exact => "exact",
        };
        Json::obj()
            .field("schema", SCHEMA_VERSION)
            .field(
                "artifacts",
                self.artifacts
                    .iter()
                    .map(|a| {
                        Json::obj()
                            .field("label", a.label.as_str())
                            .field("calibrated", a.calibrated)
                            .field("drift", a.drift.factor)
                            .field("drift_source", source_name(a.drift.source))
                    })
                    .collect::<Vec<_>>(),
            )
            .field(
                "series",
                self.series
                    .iter()
                    .map(|s| {
                        let change = match &s.change {
                            Change::Flat => Json::obj().field("kind", "flat"),
                            Change::Step { at, ratio } => Json::obj()
                                .field("kind", "step")
                                .field("at", *at)
                                .field("ratio", *ratio),
                            Change::Drift { ratio } => {
                                Json::obj().field("kind", "drift").field("ratio", *ratio)
                            }
                        };
                        Json::obj()
                            .field("key", s.key.as_str())
                            .field("class", class_name(s.class))
                            .field(
                                "points",
                                s.points
                                    .iter()
                                    .map(|p| match p {
                                        None => Json::Null,
                                        Some((raw, normalized)) => Json::obj()
                                            .field("raw", *raw)
                                            .field("normalized", *normalized),
                                    })
                                    .collect::<Vec<_>>(),
                            )
                            .field("change", change)
                    })
                    .collect::<Vec<_>>(),
            )
            .field(
                "fingerprints",
                self.exact_flips
                    .iter()
                    .map(|(key, flips)| {
                        Json::obj()
                            .field("key", key.as_str())
                            .field("flips", *flips)
                    })
                    .collect::<Vec<_>>(),
            )
            .field(
                "summary",
                Json::obj()
                    .field("series", self.series.len())
                    .field("flat", self.flat())
                    .field("steps", self.steps())
                    .field("drifts", self.drifts())
                    .field("exact_flips", self.total_exact_flips()),
            )
    }
}

/// The structural schema every `aov-trend/1` document must satisfy.
pub fn trend_schema() -> Schema {
    Schema::object([
        ("schema", Schema::Str, true),
        (
            "artifacts",
            Schema::array(Schema::object([
                ("label", Schema::Str, true),
                ("calibrated", Schema::Bool, true),
                ("drift", Schema::Num, true),
                ("drift_source", Schema::Str, true),
            ])),
            true,
        ),
        (
            "series",
            Schema::array(Schema::object([
                ("key", Schema::Str, true),
                ("class", Schema::Str, true),
                (
                    "points",
                    Schema::array(Schema::nullable(Schema::object([
                        ("raw", Schema::Num, true),
                        ("normalized", Schema::Num, true),
                    ]))),
                    true,
                ),
                (
                    "change",
                    Schema::object([
                        ("kind", Schema::Str, true),
                        ("at", Schema::Int, false),
                        ("ratio", Schema::Num, false),
                    ]),
                    true,
                ),
            ])),
            true,
        ),
        (
            "fingerprints",
            Schema::array(Schema::object([
                ("key", Schema::Str, true),
                ("flips", Schema::Int, true),
            ])),
            true,
        ),
        (
            "summary",
            Schema::object([
                ("series", Schema::Int, true),
                ("flat", Schema::Int, true),
                ("steps", Schema::Int, true),
                ("drifts", Schema::Int, true),
                ("exact_flips", Schema::Int, true),
            ]),
            true,
        ),
    ])
}

/// Validates a parsed trend document against [`trend_schema`].
///
/// # Errors
///
/// Every structural mismatch, with its JSON path.
pub fn validate(doc: &Json) -> Result<(), Vec<String>> {
    schema::validate(doc, &trend_schema())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observatory;

    fn tol() -> Tolerance {
        Tolerance::default()
    }

    #[test]
    fn classify_flat_series() {
        let pts: Vec<Option<f64>> = vec![Some(100_000.0), Some(104_000.0), Some(98_000.0)];
        assert_eq!(classify(&pts, 0.5, 10_000.0), Change::Flat);
        // One missing point does not upset the verdict.
        let pts = vec![Some(100_000.0), None, Some(101_000.0)];
        assert_eq!(classify(&pts, 0.5, 10_000.0), Change::Flat);
        // Under two present points there is nothing to classify.
        assert_eq!(classify(&[Some(1.0)], 0.5, 10_000.0), Change::Flat);
        assert_eq!(classify(&[None, None], 0.5, 10_000.0), Change::Flat);
    }

    #[test]
    fn classify_step_lands_on_the_boundary() {
        let pts: Vec<Option<f64>> = [100_000.0, 101_000.0, 99_000.0, 200_000.0, 202_000.0]
            .iter()
            .map(|&v| Some(v))
            .collect();
        match classify(&pts, 0.5, 10_000.0) {
            Change::Step { at, ratio } => {
                assert_eq!(at, 3);
                assert!((ratio - 2.0).abs() < 0.1, "{ratio}");
            }
            other => panic!("wanted a step, got {other:?}"),
        }
    }

    #[test]
    fn classify_gradual_growth_is_drift_not_step() {
        let pts: Vec<Option<f64>> = [100_000.0, 130_000.0, 169_000.0, 220_000.0, 286_000.0]
            .iter()
            .map(|&v| Some(v))
            .collect();
        match classify(&pts, 0.5, 10_000.0) {
            Change::Drift { ratio } => assert!(ratio > 1.0, "{ratio}"),
            other => panic!("wanted drift, got {other:?}"),
        }
    }

    #[test]
    fn classify_single_outlier_recording_stays_flat() {
        // The medians shield the split from one bad artifact.
        let pts: Vec<Option<f64>> = [100_000.0, 101_000.0, 500_000.0, 99_000.0, 100_500.0]
            .iter()
            .map(|&v| Some(v))
            .collect();
        assert_eq!(classify(&pts, 0.5, 10_000.0), Change::Flat);
    }

    #[test]
    fn classify_small_absolute_movement_is_flat() {
        // 2× ratio but under the 10 ms floor.
        let pts: Vec<Option<f64>> = vec![Some(2_000.0), Some(2_100.0), Some(4_000.0)];
        assert_eq!(classify(&pts, 0.5, 10_000.0), Change::Flat);
    }

    /// Synthetic artifact sequences: uniform machine drift on
    /// uncalibrated artifacts normalizes away, while a genuine
    /// per-metric step survives normalization and is localized.
    #[test]
    fn uniform_drift_normalizes_away_but_a_real_step_survives() {
        let artifact = |scales: &[f64]| -> Json {
            let stat = |v: f64| Json::obj().field("min", v as i64).field("median", v as i64);
            let stages: Vec<Json> = scales
                .iter()
                .enumerate()
                .map(|(i, &s)| {
                    Json::obj()
                        .field("name", format!("s{i}"))
                        .field("us", stat(200_000.0 * s))
                })
                .collect();
            Json::obj().field("schema", "aov-bench/1").field(
                "examples",
                vec![Json::obj()
                    .field("program", "example1")
                    .field("wall_us", stat(200_000.0 * scales.iter().sum::<f64>()))
                    .field("stages", stages)
                    .field("code_digest", "aaaa")],
            )
        };
        // Four recordings: machine drifts 1.0 → 1.1 → 1.5 → 1.4
        // uniformly, and stage s2 *genuinely* doubles from the third
        // recording on.
        let seq: Vec<(String, Json)> = [1.0, 1.1, 1.5, 1.4]
            .iter()
            .enumerate()
            .map(|(i, &m)| {
                let mut scales = [m; 10];
                if i >= 2 {
                    scales[2] = 2.0 * m;
                }
                let (doc, _) = observatory::upgrade(artifact(&scales)).expect("upgrades");
                (format!("t{i}"), doc)
            })
            .collect();
        let trend = analyze(&seq, &tol()).expect("analyzes");

        // Drift factors track the machine, estimated (no calibration).
        assert!(trend.artifacts.iter().skip(1).all(|a| !a.calibrated));
        assert_eq!(trend.artifacts[2].drift.source, DriftSource::Estimated);
        assert!(
            (trend.artifacts[2].drift.factor - 1.5).abs() < 0.05,
            "{:?}",
            trend.artifacts[2].drift
        );

        // Every stage except s2 is flat after normalization; s2 is a
        // step at recording #2 with ratio ≈ 2.
        for s in &trend.series {
            if s.key == "example1.stage.s2_us" {
                match &s.change {
                    Change::Step { at, ratio } => {
                        assert_eq!(*at, 2, "{:?}", s.change);
                        assert!((ratio - 2.0).abs() < 0.2, "{ratio}");
                    }
                    other => panic!("s2 should step, got {other:?}"),
                }
            } else if s.key.contains(".stage.") {
                assert_eq!(s.change, Change::Flat, "{} moved", s.key);
            }
        }
        // The report renders a sparkline per wall series and names the
        // step.
        let report = trend.render();
        assert!(report.contains("pipeline wall clocks"), "{report}");
        assert!(report.contains("STEP"), "{report}");

        // The emitted document validates against its own schema and
        // carries the step.
        let doc = trend.to_json();
        validate(&doc).expect("trend document is schema-valid");
        assert_eq!(doc.get("schema"), Some(&Json::Str(SCHEMA_VERSION.into())));
        let Some(Json::Obj(summary)) = doc.get("summary") else {
            panic!("summary missing");
        };
        assert!(summary
            .iter()
            .any(|(k, v)| k == "steps" && *v == Json::Int(1)));
    }

    #[test]
    fn analyze_rejects_degenerate_input() {
        assert!(analyze(&[], &tol()).is_err());
        let (doc, _) = observatory::upgrade(
            Json::parse(include_str!("../../../BENCH_0.json")).expect("parses"),
        )
        .expect("upgrades");
        assert!(analyze(&[("only".into(), doc)], &tol()).is_err());
    }

    #[test]
    fn sparkline_handles_missing_and_flat() {
        let pts = vec![
            Some((1.0, 100.0)),
            None,
            Some((1.0, 50.0)),
            Some((1.0, 100.0)),
        ];
        let line = sparkline(&pts);
        assert_eq!(line.chars().count(), 4);
        assert_eq!(line.chars().nth(1), Some('·'));
        assert_eq!(line.chars().next(), line.chars().nth(3));
    }
}
