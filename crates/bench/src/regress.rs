//! Noise-aware comparison of two `BENCH_*.json` artifacts.
//!
//! Both artifacts are flattened into namespaced metrics
//! (`example3.wall_us`, `example1.counter.lp.simplex.pivots`,
//! `fig.fig05.digest`, …), each carrying a *class* that decides how it
//! is judged:
//!
//! * [`MetricClass::Time`] — wall-clock microseconds (the min over the
//!   suite's repetitions). A change only counts when it clears *both* a
//!   relative tolerance and an absolute floor, so microsecond-scale
//!   stages can double without tripping the gate while a real slowdown
//!   of a long stage still does.
//! * [`MetricClass::Count`] — solver-effort counters (pivots,
//!   branch-and-bound nodes, memo hits). Deterministic in principle,
//!   but given a small relative band so incidental ordering drift does
//!   not gate.
//! * [`MetricClass::Exact`] — correctness fingerprints (AOV components,
//!   equivalence verdicts, code/figure digests). Any difference is a
//!   regression: the observatory treats result drift as strictly worse
//!   than slow.
//!
//! Metrics present only in the current run are [`Status::New`] (a grown
//! suite is not a regression); metrics present only in the baseline are
//! [`Status::Missing`] (reported, so silent coverage loss is visible,
//! but not gating). Only [`Status::Regressed`] makes
//! [`Comparison::has_regressions`] true — the `aov bench
//! --fail-on-regression` exit code.
//!
//! # Drift normalization
//!
//! Two artifacts are rarely measured at the same machine speed: shared
//! containers throttle, and a uniformly slower machine is not a slower
//! program (PR 7's gate run flagged 17 regressions, all of them this).
//! [`compare`] therefore resolves a [`Drift`] factor between the two
//! artifacts and judges every Time-class metric on its *normalized*
//! value (current ÷ factor), reporting raw and normalized movement side
//! by side. The factor comes from the strongest available evidence:
//!
//! 1. **Measured** — both artifacts carry a measured calibration block
//!    (`aov-bench/2`): the factor is [`Calibration::speed_factor`].
//!    Authoritative: a program that got uniformly slower on a machine
//!    whose calibration did not move still gates.
//! 2. **Estimated** — either side lacks calibration (v1-era baselines):
//!    the factor is the *median* of current÷baseline ratios over the
//!    Time metrics both sides measured above the tolerance floor,
//!    needing at least [`MIN_ESTIMATE_SAMPLES`] of them and clamped to
//!    `[0.25, 4.0]`. The median moves when the whole suite drifts
//!    together (machine speed) but stays put when a few metrics regress
//!    (genuine slowdowns), which still gate against it.
//! 3. **Neutral** — too few samples to say anything: factor 1, the
//!    pre-drift-aware behavior.
//!
//! Count and Exact classes are never normalized — counters are the
//! drift-proof backbone precisely because machine speed cannot move
//! them.

use aov_support::calibrate::Calibration;
use aov_support::Json;

/// How far a metric may move before it counts as a real change.
#[derive(Debug, Clone)]
pub struct Tolerance {
    /// Relative band for [`MetricClass::Time`] (0.5 = ±50%).
    pub time_rel: f64,
    /// Absolute floor for time changes, microseconds: changes smaller
    /// than this never gate, whatever the ratio.
    pub time_floor_us: f64,
    /// Relative band for [`MetricClass::Count`].
    pub count_rel: f64,
    /// Absolute floor for counter changes.
    pub count_floor: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            time_rel: 0.5,
            time_floor_us: 10_000.0,
            count_rel: 0.10,
            count_floor: 64.0,
        }
    }
}

/// How a metric is compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricClass {
    /// Wall-clock time (noise-tolerant).
    Time,
    /// Solver-effort counter (narrow band).
    Count,
    /// Correctness fingerprint (must match exactly).
    Exact,
}

/// One named value extracted from an artifact.
#[derive(Debug, Clone)]
pub struct Metric {
    pub key: String,
    pub class: MetricClass,
    pub value: Json,
}

/// Flattens a parsed artifact into comparable metrics. Tolerant of
/// partially-formed documents: absent sections just contribute nothing
/// (the schema check is a separate, stricter gate).
pub fn flatten(artifact: &Json) -> Vec<Metric> {
    let mut out = Vec::new();
    let mut push = |key: String, class: MetricClass, value: &Json| {
        out.push(Metric {
            key,
            class,
            value: value.clone(),
        });
    };
    if let Some(Json::Arr(examples)) = artifact.get("examples") {
        for e in examples {
            let Some(Json::Str(prog)) = e.get("program") else {
                continue;
            };
            if let Some(min) = e.get("wall_us").and_then(|w| w.get("min")) {
                push(format!("{prog}.wall_us"), MetricClass::Time, min);
            }
            if let Some(Json::Arr(stages)) = e.get("stages") {
                for s in stages {
                    if let (Some(Json::Str(name)), Some(min)) =
                        (s.get("name"), s.get("us").and_then(|u| u.get("min")))
                    {
                        push(format!("{prog}.stage.{name}_us"), MetricClass::Time, min);
                    }
                }
            }
            if let Some(Json::Arr(spans)) = e.get("spans") {
                for s in spans {
                    let Some(Json::Str(name)) = s.get("name") else {
                        continue;
                    };
                    // Span self-times are recorded in nanoseconds but
                    // judged in microseconds, the unit of the Time
                    // tolerance floor.
                    if let Some(self_ns) = s.get("self_ns") {
                        push(
                            format!("{prog}.span.{name}.self_us"),
                            MetricClass::Time,
                            &Json::Float(as_f64(self_ns) / 1000.0),
                        );
                    }
                    if let Some(count) = s.get("count") {
                        push(
                            format!("{prog}.span.{name}.count"),
                            MetricClass::Count,
                            count,
                        );
                    }
                }
            }
            if let Some(Json::Arr(counters)) = e.get("counters") {
                for c in counters {
                    if let (Some(Json::Str(name)), Some(count)) = (c.get("name"), c.get("count")) {
                        push(format!("{prog}.counter.{name}"), MetricClass::Count, count);
                    }
                }
            }
            if let Some(v) = e.get("equivalent") {
                push(format!("{prog}.equivalent"), MetricClass::Exact, v);
            }
            if let Some(Json::Arr(aovs)) = e.get("aov") {
                for a in aovs {
                    if let (Some(Json::Str(array)), Some(vector)) =
                        (a.get("array"), a.get("vector"))
                    {
                        push(format!("{prog}.aov.{array}"), MetricClass::Exact, vector);
                    }
                }
            }
            if let Some(d) = e.get("code_digest") {
                push(format!("{prog}.code_digest"), MetricClass::Exact, d);
            }
        }
    }
    if let Some(Json::Arr(figures)) = artifact.get("figures") {
        for f in figures {
            let Some(Json::Str(id)) = f.get("id") else {
                continue;
            };
            if let Some(d) = f.get("digest") {
                push(format!("fig.{id}.digest"), MetricClass::Exact, d);
            }
            if let Some(r) = f.get("reproduced") {
                push(format!("fig.{id}.reproduced"), MetricClass::Exact, r);
            }
            if let Some(us) = f.get("us") {
                push(format!("fig.{id}.us"), MetricClass::Time, us);
            }
        }
    }
    out
}

/// Minimum qualifying Time-metric pairs before a drift estimate is
/// trusted (below this, a couple of genuinely regressed metrics could
/// drag the median and launder themselves).
pub const MIN_ESTIMATE_SAMPLES: usize = 8;

/// Where a [`Drift`] factor came from — the comparison's confidence in
/// it, in decreasing order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftSource {
    /// Both artifacts carried measured calibrations.
    Measured,
    /// Median of the shared Time-metric ratios (uncalibrated era).
    Estimated,
    /// No usable evidence; factor is exactly 1.
    Neutral,
}

/// The machine-speed ratio between two artifacts' recording
/// environments: how much slower (>1) or faster (<1) the current
/// artifact's machine ran than the baseline's.
#[derive(Debug, Clone, PartialEq)]
pub struct Drift {
    pub factor: f64,
    pub source: DriftSource,
}

impl Drift {
    /// No normalization: raw values are judged as-is.
    #[must_use]
    pub fn neutral() -> Drift {
        Drift {
            factor: 1.0,
            source: DriftSource::Neutral,
        }
    }

    /// Resolves the drift between two parsed artifacts, strongest
    /// evidence first (see the module docs).
    #[must_use]
    pub fn between(
        baseline: &Json,
        current: &Json,
        base_metrics: &[Metric],
        cur_metrics: &[Metric],
        tol: &Tolerance,
    ) -> Drift {
        let base_cal = Calibration::from_json(baseline.get("calibration"));
        let cur_cal = Calibration::from_json(current.get("calibration"));
        if let Some(factor) = Calibration::speed_factor(&base_cal, &cur_cal) {
            return Drift {
                factor,
                source: DriftSource::Measured,
            };
        }
        if let Some(factor) = estimate_drift(base_metrics, cur_metrics, tol) {
            return Drift {
                factor,
                source: DriftSource::Estimated,
            };
        }
        Drift::neutral()
    }

    /// One-line description for reports.
    #[must_use]
    pub fn describe(&self) -> String {
        match self.source {
            DriftSource::Measured => format!(
                "time drift ×{:.3} (measured calibration); Time metrics judged normalized",
                self.factor
            ),
            DriftSource::Estimated => format!(
                "time drift ×{:.3} (estimated: median of shared Time metrics); Time metrics judged normalized",
                self.factor
            ),
            DriftSource::Neutral => "no drift evidence; Time metrics judged raw".to_string(),
        }
    }
}

/// Median of current÷baseline over Time metrics both sides measured
/// with a baseline above the tolerance floor. `None` below
/// [`MIN_ESTIMATE_SAMPLES`]; the result is clamped to `[0.25, 4.0]` so
/// a pathological artifact pair cannot normalize anything away.
fn estimate_drift(base: &[Metric], cur: &[Metric], tol: &Tolerance) -> Option<f64> {
    let mut ratios: Vec<f64> = Vec::new();
    for b in base {
        if b.class != MetricClass::Time {
            continue;
        }
        let bv = as_f64(&b.value);
        if bv < tol.time_floor_us {
            continue;
        }
        let Some(c) = cur
            .iter()
            .find(|m| m.key == b.key && m.class == MetricClass::Time)
        else {
            continue;
        };
        let cv = as_f64(&c.value);
        if cv > 0.0 {
            ratios.push(cv / bv);
        }
    }
    if ratios.len() < MIN_ESTIMATE_SAMPLES {
        return None;
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let mid = ratios.len() / 2;
    let median = if ratios.len().is_multiple_of(2) {
        (ratios[mid - 1] + ratios[mid]) / 2.0
    } else {
        ratios[mid]
    };
    Some(median.clamp(0.25, 4.0))
}

/// The verdict on one metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Inside the noise band (or exactly equal).
    Within,
    /// Better than baseline beyond the noise band.
    Improved,
    /// Worse than baseline beyond the noise band, or an exact-class
    /// mismatch. The only gating status.
    Regressed,
    /// Not in the baseline (suite grew).
    New,
    /// In the baseline but not the current run (coverage shrank).
    Missing,
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct Delta {
    pub key: String,
    /// How the metric was judged (Time deltas are drift-normalized).
    pub class: MetricClass,
    pub status: Status,
    /// Human-readable `baseline → current` description; for Time
    /// metrics under non-neutral drift it carries both the raw and the
    /// normalized movement.
    pub note: String,
}

/// A full baseline-vs-current comparison.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// The drift factor Time metrics were normalized by.
    pub drift: Drift,
    pub deltas: Vec<Delta>,
}

fn as_f64(v: &Json) -> f64 {
    match v {
        Json::Int(i) => *i as f64,
        Json::Float(f) => *f,
        _ => 0.0,
    }
}

fn judge(base: &Metric, cur: &Metric, tol: &Tolerance, drift: &Drift) -> Delta {
    let key = cur.key.clone();
    if cur.class == MetricClass::Exact {
        return if base.value == cur.value {
            Delta {
                key,
                class: MetricClass::Exact,
                status: Status::Within,
                note: format!("unchanged ({})", cur.value.to_compact()),
            }
        } else {
            Delta {
                key,
                class: MetricClass::Exact,
                status: Status::Regressed,
                note: format!(
                    "exact value drifted: {} → {}",
                    base.value.to_compact(),
                    cur.value.to_compact()
                ),
            }
        };
    }
    let (rel, floor) = match cur.class {
        MetricClass::Time => (tol.time_rel, tol.time_floor_us),
        _ => (tol.count_rel, tol.count_floor),
    };
    let (b, c) = (as_f64(&base.value), as_f64(&cur.value));
    // Only Time metrics see the machine: normalize them into the
    // baseline machine's time before judging. Counters are judged raw.
    let normalized = cur.class == MetricClass::Time && drift.source != DriftSource::Neutral;
    let cn = if normalized { c / drift.factor } else { c };
    let pct = |x: f64| {
        if b == 0.0 {
            f64::INFINITY
        } else {
            (x - b) / b * 100.0
        }
    };
    let note = if normalized {
        format!(
            "{b:.0} → {c:.0} raw ({:+.1}%); ÷{:.3} → {cn:.0} normalized ({:+.1}%)",
            pct(c),
            drift.factor,
            pct(cn)
        )
    } else {
        format!("{b:.0} → {c:.0} ({:+.1}%)", pct(c))
    };
    let diff = cn - b;
    let status = if diff > b * rel && diff > floor {
        Status::Regressed
    } else if -diff > b * rel && -diff > floor {
        Status::Improved
    } else {
        Status::Within
    };
    Delta {
        key,
        class: cur.class,
        status,
        note,
    }
}

/// Compares two parsed artifacts metric by metric, Time metrics
/// normalized by the [`Drift`] resolved between the two artifacts.
pub fn compare(baseline: &Json, current: &Json, tol: &Tolerance) -> Comparison {
    let base_metrics = flatten(baseline);
    let cur_metrics = flatten(current);
    let drift = Drift::between(baseline, current, &base_metrics, &cur_metrics, tol);
    compare_metrics_normalized(&base_metrics, &cur_metrics, tol, drift)
}

/// Compares two pre-flattened metric sets with the same band semantics
/// as [`compare`] but no drift normalization. Other artifact kinds
/// (`aov-profile/1` in [`crate::pdiff`]) flatten themselves and share
/// the judge; their documents carry no calibration, so raw judging is
/// the honest default.
pub fn compare_metrics(base: &[Metric], cur: &[Metric], tol: &Tolerance) -> Comparison {
    compare_metrics_normalized(base, cur, tol, Drift::neutral())
}

/// [`compare_metrics`] with an explicit drift factor applied to
/// Time-class metrics.
pub fn compare_metrics_normalized(
    base: &[Metric],
    cur: &[Metric],
    tol: &Tolerance,
    drift: Drift,
) -> Comparison {
    let mut deltas = Vec::new();
    for m in cur {
        match base.iter().find(|b| b.key == m.key) {
            Some(b) => deltas.push(judge(b, m, tol, &drift)),
            None => deltas.push(Delta {
                key: m.key.clone(),
                class: m.class,
                status: Status::New,
                note: format!("no baseline value (now {})", m.value.to_compact()),
            }),
        }
    }
    for b in base {
        if !cur.iter().any(|m| m.key == b.key) {
            deltas.push(Delta {
                key: b.key.clone(),
                class: b.class,
                status: Status::Missing,
                note: format!(
                    "in baseline ({}) but not measured now",
                    b.value.to_compact()
                ),
            });
        }
    }
    Comparison { drift, deltas }
}

impl Comparison {
    /// Number of deltas with the given status.
    pub fn count(&self, status: Status) -> usize {
        self.deltas.iter().filter(|d| d.status == status).count()
    }

    /// Whether anything gates ([`Status::Regressed`] present).
    pub fn has_regressions(&self) -> bool {
        self.count(Status::Regressed) > 0
    }

    /// Human-readable report: a summary line, then every non-`Within`
    /// delta grouped by severity.
    pub fn render(&self) -> String {
        let mut out = format!(
            "regression report: {} regressed, {} improved, {} within noise, {} new, {} missing\n  {}\n",
            self.count(Status::Regressed),
            self.count(Status::Improved),
            self.count(Status::Within),
            self.count(Status::New),
            self.count(Status::Missing),
            self.drift.describe(),
        );
        for (status, label) in [
            (Status::Regressed, "REGRESSED"),
            (Status::Missing, "missing"),
            (Status::Improved, "improved"),
            (Status::New, "new"),
        ] {
            for d in self.deltas.iter().filter(|d| d.status == status) {
                out.push_str(&format!("  {label:<9} {:<44} {}\n", d.key, d.note));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aov_support::ToJson;

    /// A minimal synthetic artifact with one example and one figure.
    fn artifact(wall_us: i64, aov_us: i64, pivots: i64, digest: &str) -> Json {
        let stat = |v: i64| Json::obj().field("min", v).field("median", v);
        Json::obj()
            .field("schema", "aov-bench/1")
            .field(
                "examples",
                vec![Json::obj()
                    .field("program", "example1")
                    .field("wall_us", stat(wall_us))
                    .field(
                        "stages",
                        vec![Json::obj().field("name", "aov").field("us", stat(aov_us))],
                    )
                    .field(
                        "counters",
                        vec![Json::obj()
                            .field("name", "lp.simplex.pivots")
                            .field("count", pivots)],
                    )
                    .field("equivalent", true)
                    .field(
                        "aov",
                        vec![Json::obj()
                            .field("array", "A")
                            .field("vector", vec![Json::Int(1), Json::Int(2)])],
                    )
                    .field("code_digest", digest)],
            )
            .field(
                "figures",
                vec![Json::obj()
                    .field("id", "fig05")
                    .field("us", Json::Int(900))
                    .field("reproduced", true)
                    .field("digest", "feedbeef00000000")],
            )
    }

    fn status_of<'a>(c: &'a Comparison, key: &str) -> &'a Delta {
        c.deltas
            .iter()
            .find(|d| d.key == key)
            .unwrap_or_else(|| panic!("no delta for {key}"))
    }

    #[test]
    fn identical_artifacts_are_all_within() {
        let a = artifact(400_000, 300_000, 5_000, "aaaa");
        let c = compare(&a, &a, &Tolerance::default());
        assert!(!c.has_regressions());
        assert_eq!(c.count(Status::Within), c.deltas.len());
        assert!(c.render().starts_with("regression report: 0 regressed"));
    }

    #[test]
    fn improvement_beyond_tolerance_is_reported_not_gating() {
        let base = artifact(400_000, 300_000, 5_000, "aaaa");
        let cur = artifact(100_000, 60_000, 5_000, "aaaa");
        let c = compare(&base, &cur, &Tolerance::default());
        assert!(!c.has_regressions());
        assert_eq!(status_of(&c, "example1.wall_us").status, Status::Improved);
        assert_eq!(
            status_of(&c, "example1.stage.aov_us").status,
            Status::Improved
        );
        assert!(c.render().contains("improved"));
    }

    #[test]
    fn regression_beyond_tolerance_gates() {
        let base = artifact(400_000, 300_000, 5_000, "aaaa");
        let cur = artifact(900_000, 700_000, 5_000, "aaaa");
        let c = compare(&base, &cur, &Tolerance::default());
        assert!(c.has_regressions());
        let d = status_of(&c, "example1.wall_us");
        assert_eq!(d.status, Status::Regressed);
        assert!(d.note.contains("+125.0%"), "{}", d.note);
        assert!(c.render().contains("REGRESSED"));
    }

    #[test]
    fn jitter_within_noise_band_does_not_gate() {
        // +30% is inside the ±50% band; +3 pivots is under the floor.
        let base = artifact(400_000, 300_000, 5_000, "aaaa");
        let cur = artifact(520_000, 390_000, 5_003, "aaaa");
        let c = compare(&base, &cur, &Tolerance::default());
        assert!(!c.has_regressions());
        assert_eq!(c.count(Status::Improved), 0);
    }

    #[test]
    fn small_absolute_changes_never_gate_even_at_huge_ratios() {
        // 2000 → 9000 µs is +350% but under the 10 ms floor.
        let base = artifact(2_000, 1_000, 5_000, "aaaa");
        let cur = artifact(9_000, 8_000, 5_000, "aaaa");
        let c = compare(&base, &cur, &Tolerance::default());
        assert!(!c.has_regressions());
    }

    #[test]
    fn counter_blowup_gates() {
        let base = artifact(400_000, 300_000, 5_000, "aaaa");
        let cur = artifact(400_000, 300_000, 6_000, "aaaa");
        let c = compare(&base, &cur, &Tolerance::default());
        assert_eq!(
            status_of(&c, "example1.counter.lp.simplex.pivots").status,
            Status::Regressed
        );
    }

    #[test]
    fn digest_drift_is_always_a_regression() {
        let base = artifact(400_000, 300_000, 5_000, "aaaa");
        let cur = artifact(400_000, 300_000, 5_000, "bbbb");
        let c = compare(&base, &cur, &Tolerance::default());
        assert!(c.has_regressions());
        let d = status_of(&c, "example1.code_digest");
        assert_eq!(d.status, Status::Regressed);
        assert!(d.note.contains("drifted"));
    }

    #[test]
    fn metric_missing_from_baseline_is_new_not_regressed() {
        let mut base = artifact(400_000, 300_000, 5_000, "aaaa");
        // Baseline without the figures section at all.
        if let Json::Obj(fields) = &mut base {
            fields.retain(|(k, _)| k != "figures");
        }
        let cur = artifact(400_000, 300_000, 5_000, "aaaa");
        let c = compare(&base, &cur, &Tolerance::default());
        assert!(!c.has_regressions());
        assert_eq!(status_of(&c, "fig.fig05.digest").status, Status::New);
        assert_eq!(status_of(&c, "fig.fig05.us").status, Status::New);
    }

    #[test]
    fn metric_missing_from_current_is_flagged_missing() {
        let base = artifact(400_000, 300_000, 5_000, "aaaa");
        let mut cur = artifact(400_000, 300_000, 5_000, "aaaa");
        if let Json::Obj(fields) = &mut cur {
            fields.retain(|(k, _)| k != "figures");
        }
        let c = compare(&base, &cur, &Tolerance::default());
        assert!(!c.has_regressions());
        assert_eq!(status_of(&c, "fig.fig05.digest").status, Status::Missing);
        assert!(c.render().contains("missing"));
    }

    #[test]
    fn no_baseline_mode_is_all_new() {
        // Comparing against an empty document: everything is New.
        let cur = artifact(400_000, 300_000, 5_000, "aaaa");
        let c = compare(&Json::obj(), &cur, &Tolerance::default());
        assert!(!c.has_regressions());
        assert_eq!(c.count(Status::New), c.deltas.len());
    }

    /// A synthetic artifact with enough large Time metrics to qualify
    /// for drift estimation, each stage scaled by `scale`, optionally
    /// carrying a measured calibration scaled by `cal_scale`.
    fn wide_artifact(scales: &[f64], cal_scale: Option<f64>) -> Json {
        let stat = |v: f64| Json::obj().field("min", v as i64).field("median", v as i64);
        let base_us = 200_000.0;
        let stages: Vec<Json> = scales
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                Json::obj()
                    .field("name", format!("s{i}"))
                    .field("us", stat(base_us * s))
            })
            .collect();
        let mut doc = Json::obj().field("schema", "aov-bench/2").field(
            "examples",
            vec![Json::obj()
                .field("program", "example1")
                .field("stages", stages)
                .field("code_digest", "aaaa")],
        );
        if let Some(scale) = cal_scale {
            doc = doc.field(
                "calibration",
                Calibration {
                    cpu_ns: 1000.0 * scale,
                    alloc_ns: 800.0 * scale,
                    bigint_ns: 1200.0 * scale,
                }
                .to_json(),
            );
        }
        doc
    }

    #[test]
    fn uniform_drift_on_uncalibrated_artifacts_is_estimated_away() {
        let base = wide_artifact(&[1.0; 10], None);
        let cur = wide_artifact(&[1.6; 10], None);
        let c = compare(&base, &cur, &Tolerance::default());
        assert_eq!(c.drift.source, DriftSource::Estimated);
        assert!((c.drift.factor - 1.6).abs() < 0.01, "{:?}", c.drift);
        assert!(!c.has_regressions(), "{}", c.render());
        // Raw movement (+60%) and normalized movement (~0%) both appear.
        let d = &c.deltas[0];
        assert!(
            d.note.contains("raw") && d.note.contains("normalized"),
            "{}",
            d.note
        );
    }

    #[test]
    fn single_metric_step_still_gates_under_estimation() {
        let base = wide_artifact(&[1.0; 10], None);
        let mut scales = [1.0; 10];
        scales[3] = 3.0; // one genuine slowdown among steady metrics
        let cur = wide_artifact(&scales, None);
        let c = compare(&base, &cur, &Tolerance::default());
        // The median ignores the outlier: factor stays ~1.
        assert!((c.drift.factor - 1.0).abs() < 0.01, "{:?}", c.drift);
        assert_eq!(
            status_of(&c, "example1.stage.s3_us").status,
            Status::Regressed
        );
        assert_eq!(c.count(Status::Regressed), 1);
    }

    /// Measured calibration is authoritative: when the machine provably
    /// did not slow down, a uniform program slowdown gates even though
    /// a data-derived estimate would have laundered it.
    #[test]
    fn measured_calibration_overrides_estimation() {
        let base = wide_artifact(&[1.0; 10], Some(1.0));
        let cur = wide_artifact(&[2.0; 10], Some(1.0));
        let c = compare(&base, &cur, &Tolerance::default());
        assert_eq!(c.drift.source, DriftSource::Measured);
        assert!((c.drift.factor - 1.0).abs() < 1e-9);
        assert_eq!(c.count(Status::Regressed), 10, "{}", c.render());
    }

    #[test]
    fn measured_calibration_normalizes_uniform_machine_slowdown() {
        let base = wide_artifact(&[1.0; 10], Some(1.0));
        // Machine 1.5× slower, program timings 1.5× slower: not a
        // program regression.
        let cur = wide_artifact(&[1.5; 10], Some(1.5));
        let c = compare(&base, &cur, &Tolerance::default());
        assert_eq!(c.drift.source, DriftSource::Measured);
        assert!((c.drift.factor - 1.5).abs() < 1e-9);
        assert!(!c.has_regressions(), "{}", c.render());
        // But a per-metric slowdown on the slower machine still gates.
        let mut scales = [1.5; 10];
        scales[0] = 4.5; // 3× slower after normalization
        let worse = wide_artifact(&scales, Some(1.5));
        let c = compare(&base, &worse, &Tolerance::default());
        assert_eq!(
            status_of(&c, "example1.stage.s0_us").status,
            Status::Regressed
        );
        assert_eq!(c.count(Status::Regressed), 1);
    }

    #[test]
    fn too_few_samples_fall_back_to_neutral_raw_judging() {
        // Three qualifying Time metrics (< MIN_ESTIMATE_SAMPLES):
        // estimation must not engage, so uniform drift gates raw.
        let base = wide_artifact(&[1.0; 3], None);
        let cur = wide_artifact(&[2.0; 3], None);
        let c = compare(&base, &cur, &Tolerance::default());
        assert_eq!(c.drift.source, DriftSource::Neutral);
        assert_eq!(c.count(Status::Regressed), 3);
        assert!(c.render().contains("no drift evidence"));
    }
}
