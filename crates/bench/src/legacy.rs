//! Direct-computation reference figures, predating the engine-driven
//! suite.
//!
//! Before the benchmark observatory, every figure recomputed its own
//! analyses by calling the solvers directly. The engine-driven paths in
//! the crate root must be drop-in replacements — same text, byte for
//! byte — so the representative reference (`fig05`, which exercises the
//! AOV headline result) is kept here and golden-compared against the
//! [`crate::fig05`] output in `tests/golden_fig05.rs`.

use crate::FigureReport;
use aov_core::{problems, uov};
use aov_ir::examples;

/// Figure 5 computed without the pipeline: solve Problem 3 from scratch
/// and compare against the exact search and the UOV baseline.
pub fn fig05() -> FigureReport {
    let p = examples::example1();
    let aov = problems::aov(&p)
        .expect("solvable")
        .vector_for("A")
        .unwrap()
        .clone();
    let search = problems::aov_search(&p, 6).expect("solvable");
    let uov = uov::shortest_uov(&p, aov_ir::ArrayId(0), 6).expect("stencil");
    FigureReport {
        id: "fig05".into(),
        title: "AOV of Example 1 vs the Strout et al. UOV".into(),
        paper: "AOV (1,2), shorter (Euclidean) than the UOV (0,3)".into(),
        measured: format!(
            "AOV {aov} (search agrees: {}), UOV {uov}; |AOV|₂² = {} vs |UOV|₂² = {}",
            search.vector_for("A") == Some(&aov),
            aov.euclidean_sq(),
            uov.euclidean_sq()
        ),
        reproduced: aov.components() == [1, 2]
            && uov.components() == [0, 3]
            && aov.euclidean_sq() < uov.euclidean_sq(),
        lines: vec!["any legal affine schedule may run against the transformed storage".into()],
    }
}
