//! Regeneration harness for every figure of the paper's evaluation,
//! plus the benchmark observatory that tracks its cost over time.
//!
//! Each `figNN` function recomputes one paper artifact and returns a
//! [`FigureReport`] with the series/rows the paper prints, a short
//! conclusion, and a pass/fail against the expected qualitative shape.
//! The figures are *engine-driven*: analysis results (AOVs, Problem 1
//! OVs, transformed code) come out of [`aov_engine::Pipeline`] reports
//! held in a [`FigureCtx`], so every figure inherits per-stage timings,
//! `aov-trace` span attribution and solver-counter deltas for free —
//! and the heavy analyses (Example 3's AOV in particular) run once per
//! suite instead of once per figure.
//!
//! The binaries under `src/bin/` print single figures;
//! `cargo run -p aov-bench --bin all_figures` regenerates everything
//! (the data recorded in `EXPERIMENTS.md`). The [`observatory`] module
//! turns a suite run into a versioned `BENCH_<n>.json` artifact and
//! [`regress`] compares two artifacts with noise-aware thresholds — the
//! `aov bench` CLI subcommand drives both.

use aov_core::{problems, transform::StorageTransform, uov, OccupancyVector};
use aov_engine::{EngineError, Health, Pipeline, Report};
use aov_ir::{examples, Program};
use aov_linalg::{AffineExpr, QVector};
use aov_machine::{experiments, MachineConfig};
use aov_schedule::{legal, Schedule, ScheduleSpace};
use aov_support::{Json, ToJson};

pub mod legacy;
pub mod observatory;
pub mod pdiff;
pub mod regress;
pub mod trend;

/// A regenerated artifact: headline result plus printable lines.
#[derive(Debug, Clone)]
pub struct FigureReport {
    /// Figure identifier (e.g. `"fig05"`).
    pub id: String,
    /// One-line title.
    pub title: String,
    /// What the paper reports.
    pub paper: String,
    /// What this reproduction measures.
    pub measured: String,
    /// Whether the qualitative claim is reproduced.
    pub reproduced: bool,
    /// Printable detail lines (series, code, constraint systems).
    pub lines: Vec<String>,
}

impl FigureReport {
    /// Renders the report for terminals.
    pub fn render(&self) -> String {
        let mut out = format!(
            "== {} — {}\n   paper:    {}\n   measured: {}\n   reproduced: {}\n",
            self.id, self.title, self.paper, self.measured, self.reproduced
        );
        for l in &self.lines {
            out.push_str("   | ");
            out.push_str(l);
            out.push('\n');
        }
        out
    }
}

impl ToJson for FigureReport {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("id", self.id.as_str())
            .field("title", self.title.as_str())
            .field("paper", self.paper.as_str())
            .field("measured", self.measured.as_str())
            .field("reproduced", self.reproduced)
            .field(
                "lines",
                self.lines
                    .iter()
                    .map(|l| Json::from(l.as_str()))
                    .collect::<Vec<_>>(),
            )
    }
}

/// The paper's four example programs, in order.
pub const EXAMPLES: [&str; 4] = ["example1", "example2", "example3", "example4"];

/// Worker-thread default shared by the figure binaries and `aov bench`:
/// available parallelism, capped at 8.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

fn program_by_name(name: &str) -> Option<Program> {
    match name {
        "example1" => Some(examples::example1()),
        "example2" => Some(examples::example2()),
        "example3" => Some(examples::example3()),
        "example4" => Some(examples::example4()),
        _ => None,
    }
}

/// Shared context for engine-driven figures: one instrumented
/// [`Pipeline`] report per example, computed once and consumed by every
/// figure that needs that example's analysis results.
#[derive(Debug)]
pub struct FigureCtx {
    workers: usize,
    entries: Vec<(String, Program, Report)>,
}

impl FigureCtx {
    /// Runs the instrumented pipeline (LP memoization on) for each named
    /// example and captures the reports.
    ///
    /// # Errors
    ///
    /// [`EngineError`] when a name is unknown or a pipeline stage fails.
    pub fn build(names: &[&str], workers: usize) -> Result<FigureCtx, EngineError> {
        let mut entries = Vec::new();
        for name in names {
            let program = program_by_name(name).ok_or_else(|| {
                EngineError::Unsupported(format!(
                    "unknown example {name:?} (expected example1..example4)"
                ))
            })?;
            let report = Pipeline::new(program.clone())
                .workers(workers)
                .memoize(true)
                .run()?;
            reject_degraded(name, &report)?;
            entries.push((name.to_string(), program, report));
        }
        Ok(FigureCtx { workers, entries })
    }

    /// A context over all four examples.
    ///
    /// # Errors
    ///
    /// As for [`FigureCtx::build`].
    pub fn build_all(workers: usize) -> Result<FigureCtx, EngineError> {
        FigureCtx::build(&EXAMPLES, workers)
    }

    /// Wraps reports that were already produced elsewhere (the
    /// observatory's timed runs) so the figures reuse them instead of
    /// re-running the pipelines.
    pub fn from_reports(workers: usize, reports: Vec<Report>) -> FigureCtx {
        let entries = reports
            .into_iter()
            .filter_map(|r| program_by_name(&r.program).map(|p| (r.program.clone(), p, r)))
            .collect();
        FigureCtx { workers, entries }
    }

    /// Whether this context holds a report for `name`.
    pub fn has(&self, name: &str) -> bool {
        self.entries.iter().any(|(n, _, _)| n == name)
    }

    /// Example names present, in insertion order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _, _)| n.as_str()).collect()
    }

    /// Worker threads the pipelines ran with.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The pipeline report of one example.
    ///
    /// # Panics
    ///
    /// When the context was not built with that example — a figure
    /// asked for an analysis its suite never ran.
    pub fn report(&self, name: &str) -> &Report {
        self.entries
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, _, r)| r)
            .unwrap_or_else(|| panic!("FigureCtx has no report for {name:?}"))
    }

    /// The program of one example (same availability as
    /// [`FigureCtx::report`]).
    ///
    /// # Panics
    ///
    /// As for [`FigureCtx::report`].
    pub fn program(&self, name: &str) -> &Program {
        self.entries
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, p, _)| p)
            .unwrap_or_else(|| panic!("FigureCtx has no program for {name:?}"))
    }

    /// The AOV result of one example's report.
    ///
    /// # Panics
    ///
    /// As for [`FigureCtx::report`], or when the report is degraded
    /// (healthy runs are enforced at build time; externally supplied
    /// reports must be complete too).
    pub fn aov(&self, name: &str) -> &aov_core::problems::OvResult {
        self.report(name)
            .aov
            .as_ref()
            .unwrap_or_else(|| panic!("report for {name:?} has no AOV (degraded run)"))
    }

    /// The transformed code of one example's report.
    ///
    /// # Panics
    ///
    /// As for [`FigureCtx::aov`].
    pub fn code(&self, name: &str) -> &str {
        self.report(name)
            .code
            .as_deref()
            .unwrap_or_else(|| panic!("report for {name:?} has no code (degraded run)"))
    }
}

/// The figure suite measures the paper's results; a degraded pipeline
/// (budget trip, fault, unschedulable input) has none to measure, so
/// benchmarking rejects it instead of recording partial numbers.
pub(crate) fn reject_degraded(name: &str, report: &Report) -> Result<(), EngineError> {
    if report.health() == Health::Ok {
        return Ok(());
    }
    let reasons: Vec<String> = report
        .stages
        .iter()
        .filter(|s| s.outcome.class() != "ok")
        .map(|s| format!("{}: {}", s.name, s.outcome.reason().unwrap_or("")))
        .collect();
    Err(EngineError::Unsupported(format!(
        "pipeline for {name} did not complete cleanly ({}); benchmarking requires healthy runs",
        reasons.join("; ")
    )))
}

/// Figure 3: shortest OV for Example 1 under the row-parallel schedule.
///
/// Engine-driven: the row schedule is pinned into the pipeline with
/// [`Pipeline::with_schedule`] and the OV read back from its Problem 1
/// stage; the exact search cross-checks the LP answer.
pub fn fig03(ctx: &FigureCtx) -> FigureReport {
    let p = ctx.program("example1");
    let row = Schedule::uniform_for(p, &[AffineExpr::from_i64(&[0, 1, 0, 0], 0)]);
    let report = Pipeline::new(p.clone())
        .workers(ctx.workers())
        .memoize(true)
        .with_schedule(row.clone())
        .run()
        .expect("solvable");
    let search = problems::ov_for_schedule_search(p, &row, 6).expect("solvable");
    let v = report
        .ov
        .as_ref()
        .expect("problem1 ran")
        .vector_for("A")
        .expect("array A")
        .clone();
    let agree = search.vector_for("A") == Some(&v);
    FigureReport {
        id: "fig03".into(),
        title: "OV for the row-parallel schedule of Example 1".into(),
        paper: "shortest valid occupancy vector (0, 1)".into(),
        measured: format!("LP method: {v}; exact search agrees: {agree}"),
        reproduced: v.components() == [0, 1] && agree,
        lines: vec![
            format!("schedule: Θ(i,j) = j"),
            format!("storage constraints instantiated at Θ; ILP minimum: {v}"),
        ],
    }
}

/// Figure 4: the schedules valid for Example 1 under OV (0, 2).
pub fn fig04(ctx: &FigureCtx) -> FigureReport {
    let p = ctx.program("example1");
    let v = OccupancyVector::new(vec![0, 2]);
    let (space, poly) = problems::schedules_for_ov(p, &[v]).expect("solvable");
    let sid = aov_ir::StmtId(0);
    let dim = space.dim();
    // Admissible slope interval a/b at fixed b; the paper's lower bound
    // −1/2 is only approached asymptotically (the inhomogeneous "−1" of
    // the causality constraints vanishes as b grows).
    let slope_range = |b_val: i64| -> (f64, f64) {
        let mut fixed = poly.clone();
        fixed.add_constraint(aov_polyhedra::Constraint::eq0(
            &AffineExpr::var(dim, space.iter_coeff(sid, 1))
                - &AffineExpr::constant(dim, b_val.into()),
        ));
        let a_expr = AffineExpr::var(dim, space.iter_coeff(sid, 0));
        let amin = fixed.minimum(&a_expr).expect("bounded").to_f64() / b_val as f64;
        let amax = fixed.maximum(&a_expr).expect("bounded").to_f64() / b_val as f64;
        (amin, amax)
    };
    let (lo6, hi6) = slope_range(6);
    let (lo60, hi60) = slope_range(60);
    let (lo600, hi600) = slope_range(600);
    // Upper bound is exactly 1/2 (attained at b = 2a); lower bound
    // strictly decreases toward −1/2 without reaching it.
    let ok =
        hi6 == 0.5 && hi60 == 0.5 && hi600 == 0.5 && lo60 < lo6 && lo600 < lo60 && lo600 > -0.5;
    let mut lines = vec![
        format!("slope range at b = 6:   [{lo6:.5}, {hi6:.5}]"),
        format!("slope range at b = 60:  [{lo60:.5}, {hi60:.5}]"),
        format!("slope range at b = 600: [{lo600:.5}, {hi600:.5}] (→ (-1/2, 1/2])"),
    ];
    for (a, b, expect) in [
        (0i64, 1i64, true),
        (1, 3, true),
        (-1, 3, true),
        (2, 3, false),
        (1, 0, false),
    ] {
        let mut pt = QVector::zeros(dim);
        pt[space.iter_coeff(sid, 0)] = a.into();
        pt[space.iter_coeff(sid, 1)] = b.into();
        let inside = poly.contains(&pt);
        lines.push(format!(
            "Θ = {a}i + {b}j: valid = {inside} (expected {expect})"
        ));
    }
    FigureReport {
        id: "fig04".into(),
        title: "schedules valid for OV (0,2) on Example 1".into(),
        paper: "slopes a/b in (-1/2, 1/2), upper end approached / lower asymptotic".into(),
        measured: format!(
            "upper bound exactly 1/2; lower bound {lo6:.4} → {lo600:.4} approaching -1/2"
        ),
        reproduced: ok,
        lines,
    }
}

/// Figure 5 (+ §5.1.4): the AOV of Example 1, vs the UOV baseline.
///
/// Engine-driven: the AOV comes from the pipeline report's Problem 3
/// stage; exact search and the UOV baseline cross-check it.
pub fn fig05(ctx: &FigureCtx) -> FigureReport {
    let p = ctx.program("example1");
    let aov = ctx
        .aov("example1")
        .vector_for("A")
        .expect("array A")
        .clone();
    let search = problems::aov_search(p, 6).expect("solvable");
    let uov = uov::shortest_uov(p, aov_ir::ArrayId(0), 6).expect("stencil");
    FigureReport {
        id: "fig05".into(),
        title: "AOV of Example 1 vs the Strout et al. UOV".into(),
        paper: "AOV (1,2), shorter (Euclidean) than the UOV (0,3)".into(),
        measured: format!(
            "AOV {aov} (search agrees: {}), UOV {uov}; |AOV|₂² = {} vs |UOV|₂² = {}",
            search.vector_for("A") == Some(&aov),
            aov.euclidean_sq(),
            uov.euclidean_sq()
        ),
        reproduced: aov.components() == [1, 2]
            && uov.components() == [0, 3]
            && aov.euclidean_sq() < uov.euclidean_sq(),
        lines: vec!["any legal affine schedule may run against the transformed storage".into()],
    }
}

/// Figure 6: transformed code of Example 1 under the AOV.
///
/// Engine-driven: both the AOV and the transformed code come from the
/// pipeline report (Example 1 has a single array, so the report's code
/// is exactly the single-transform code).
pub fn fig06(ctx: &FigureCtx) -> FigureReport {
    let p = ctx.program("example1");
    let a = p.array_by_name("A").unwrap();
    let v = ctx
        .aov("example1")
        .vector_for("A")
        .expect("array A")
        .clone();
    let t = StorageTransform::new(p, a, &v).expect("transformable");
    let (n, m) = (100i64, 100i64);
    let orig = t.original_size(&[n, m]);
    let new = t.transformed_size(&[n, m]);
    FigureReport {
        id: "fig06".into(),
        title: "transformed code for Example 1 (AOV)".into(),
        paper: "A[2i−j+m]: storage n·m → 2n+m".into(),
        measured: format!("storage {orig} → {new} at (n,m) = ({n},{m})"),
        reproduced: new == 2 * n + m - 2 && new < orig,
        lines: ctx.code("example1").lines().map(str::to_string).collect(),
    }
}

/// Figure 9: Example 2's AOVs and transformed code.
///
/// Engine-driven: vectors and code from the Example 2 pipeline report.
pub fn fig09(ctx: &FigureCtx) -> FigureReport {
    let p = ctx.program("example2");
    let va = ctx
        .aov("example2")
        .vector_for("A")
        .expect("array A")
        .clone();
    let vb = ctx
        .aov("example2")
        .vector_for("B")
        .expect("array B")
        .clone();
    let ts: Vec<StorageTransform> = [("A", &va), ("B", &vb)]
        .into_iter()
        .map(|(n, v)| StorageTransform::new(p, p.array_by_name(n).unwrap(), v).unwrap())
        .collect();
    let (n, m) = (100i64, 100i64);
    let sizes: Vec<String> = ts
        .iter()
        .map(|t| {
            format!(
                "{}: {} → {}",
                t.array_name(),
                t.original_size(&[n, m]),
                t.transformed_size(&[n, m])
            )
        })
        .collect();
    let ok = va.components() == [1, 1] && vb.components() == [1, 1];
    let mut lines = sizes;
    lines.extend(ctx.code("example2").lines().map(str::to_string));
    FigureReport {
        id: "fig09".into(),
        title: "AOVs and transformed code for Example 2".into(),
        paper: "v_A = v_B = (1,1); arrays collapse to n+m vectors".into(),
        measured: format!("v_A = {va}, v_B = {vb}"),
        reproduced: ok,
        lines,
    }
}

/// Figure 11: Example 3's AOV and transformed code (the Z-emptiness
/// pruning case).
///
/// Engine-driven: reuses the Example 3 pipeline report, so the heaviest
/// analysis in the suite runs once per suite instead of once per figure.
pub fn fig11(ctx: &FigureCtx) -> FigureReport {
    let p = ctx.program("example3");
    let v = ctx
        .aov("example3")
        .vector_for("D")
        .expect("array D")
        .clone();
    let d = p.array_by_name("D").unwrap();
    let t = StorageTransform::new(p, d, &v).expect("transformable");
    let (x, y, z) = (50i64, 50, 50);
    let orig = t.original_size(&[x, y, z]);
    let new = t.transformed_size(&[x, y, z]);
    FigureReport {
        id: "fig11".into(),
        title: "AOV and transformed storage for Example 3".into(),
        paper: "v = (1,1,1); 3-d cube collapses to a 2-d array".into(),
        measured: format!(
            "v = {v}; storage {orig} → {new} at {x}³ ({}d → {}d)",
            3,
            t.transformed_dim()
        ),
        reproduced: v.components() == [1, 1, 1] && t.transformed_dim() == 2 && new < orig,
        lines: vec!["boundary storage constraints pruned: Z = ∅ for v ≥ (1,1,1) (§5.3)".into()],
    }
}

/// Figure 14: Example 4's AOVs (non-uniform dependences).
///
/// Engine-driven: vectors from the Example 4 pipeline report; the exact
/// checker validates both our vector and the paper's.
pub fn fig14(ctx: &FigureCtx) -> FigureReport {
    let p = ctx.program("example4");
    let va = ctx
        .aov("example4")
        .vector_for("A")
        .expect("array A")
        .clone();
    let vb = ctx
        .aov("example4")
        .vector_for("B")
        .expect("array B")
        .clone();
    // The paper's hand derivation reports (1,1); our exact dependence
    // domains admit the shorter (1,0), which the exact checker confirms.
    let mut checker = aov_core::check::Checker::new(p);
    let a = p.array_by_name("A").unwrap();
    let paper_valid = checker.valid_for_all_schedules(a, &[1, 1]).unwrap_or(false);
    let ours_valid = checker
        .valid_for_all_schedules(a, va.components())
        .unwrap_or(false);
    FigureReport {
        id: "fig14".into(),
        title: "AOVs for Example 4 (non-uniform dependences)".into(),
        paper: "v_A = (1,1), v_B = 1".into(),
        measured: format!(
            "v_A = {va} (exact-checker valid: {ours_valid}), v_B = {vb}; the paper's (1,1) also checks: {paper_valid}"
        ),
        reproduced: vb.components() == [1] && ours_valid && paper_valid,
        lines: vec![
            "deviation: exact dependence domains (S2 reads A[i][n-i] only for i <= n-1) \
             admit v_A = (1,0), protected by causality Θ1(i+1,·) >= Θ2(i)+1"
                .into(),
        ],
    }
}

/// Figure 15: Example 2 speedups (diagonal strips).
pub fn fig15(full_scale: bool) -> FigureReport {
    let cfg = MachineConfig::scaled_down();
    let (n, m) = if full_scale { (384, 384) } else { (128, 128) };
    let procs: Vec<usize> = if full_scale {
        vec![1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 70]
    } else {
        vec![1, 2, 4, 8, 16]
    };
    let pts = experiments::example2_speedup(&cfg, n, m, &procs);
    let lines: Vec<String> = pts
        .iter()
        .map(|p| {
            format!(
                "P={:>3}  original {:>7.2}  transformed {:>7.2}",
                p.procs, p.original, p.transformed
            )
        })
        .collect();
    let always_ahead = pts.iter().all(|p| p.transformed > p.original);
    let last = pts.last().unwrap();
    let mid = &pts[pts.len() / 2];
    let plateau = last.original < mid.original * 2.0;
    FigureReport {
        id: "fig15".into(),
        title: format!("speedup vs processors, Example 2 ({n}×{m})"),
        paper: "same trend for both; little improvement past ~16 procs; transformed ahead by a sizable constant factor".into(),
        measured: format!(
            "transformed ahead at every P: {always_ahead}; saturation: {plateau}; final gap {:.2}×",
            last.transformed / last.original
        ),
        reproduced: always_ahead && last.transformed / last.original > 1.3,
        lines,
    }
}

/// Figure 16: Example 3 speedups (blocked wavefront, superlinear).
pub fn fig16(full_scale: bool) -> FigureReport {
    let cfg = MachineConfig::memory_bound();
    let (x, y, z) = if full_scale {
        (48, 96, 96)
    } else {
        (24, 48, 48)
    };
    let procs: Vec<usize> = if full_scale {
        vec![1, 2, 4, 6, 8, 10, 12, 14, 16]
    } else {
        vec![1, 2, 4, 8]
    };
    let pts = experiments::example3_speedup(&cfg, x, y, z, &procs);
    let lines: Vec<String> = pts
        .iter()
        .map(|p| {
            format!(
                "P={:>3}  original {:>7.2}  transformed {:>7.2}",
                p.procs, p.original, p.transformed
            )
        })
        .collect();
    let ahead = pts.iter().all(|p| p.transformed >= p.original);
    let superlinear = pts.iter().any(|p| p.transformed > p.procs as f64);
    FigureReport {
        id: "fig16".into(),
        title: format!("speedup vs processors, Example 3 ({x}×{y}×{z})"),
        paper: "transformed substantially better; superlinear speedup from improved caching".into(),
        measured: format!(
            "transformed ahead everywhere: {ahead}; superlinear point exists: {superlinear}"
        ),
        reproduced: ahead && superlinear,
        lines,
    }
}

/// Extra: observed storage cells from dynamic runs (confirms the static
/// size predictions of the transforms).
pub fn storage_footprints(ctx: &FigureCtx) -> FigureReport {
    use aov_interp::store::StorageMode;
    let p = ctx.program("example1");
    let row = Schedule::uniform_for(p, &[AffineExpr::from_i64(&[0, 1, 0, 0], 0)]);
    let a = p.array_by_name("A").unwrap();
    let (n, m) = (12i64, 10i64);
    let mut lines = Vec::new();
    let mut all_ok = true;
    for v in [vec![0, 1], vec![1, 2], vec![0, 2]] {
        let ov = OccupancyVector::new(v.clone());
        let t = StorageTransform::new(p, a, &ov).unwrap();
        let modes = vec![StorageMode::Transformed(&t)];
        let (_, stats) = aov_interp::exec::run_scheduled(p, &[n, m], &row, &modes);
        let predicted = t.transformed_size(&[n, m]);
        let used = stats.cells_used[0] as i64;
        let ok = used <= predicted;
        all_ok &= ok;
        lines.push(format!(
            "v = {ov}: predicted {predicted} cells, observed {used} (within bound: {ok})"
        ));
    }
    FigureReport {
        id: "storage".into(),
        title: "observed vs predicted storage footprints (Example 1)".into(),
        paper: "(implicit) the transformed array bounds hold at runtime".into(),
        measured: "dynamic footprints within static bounds".into(),
        reproduced: all_ok,
        lines,
    }
}

/// One entry of the figure registry: identifier, the examples whose
/// pipeline reports (or programs) it consumes, and how to run it.
pub struct FigureSpec {
    /// Figure identifier (`"fig05"`, `"storage"`, …).
    pub id: &'static str,
    /// Examples that must be present in the [`FigureCtx`]. Suites built
    /// over a subset of examples (CI smoke) skip figures whose
    /// requirements are not met.
    pub needs: &'static [&'static str],
    /// Regenerates the figure; the flag is `full_scale` for the machine
    /// sweeps (ignored by analysis figures).
    pub run: fn(&FigureCtx, bool) -> FigureReport,
}

/// Every figure, in the paper's order.
pub fn figure_specs() -> &'static [FigureSpec] {
    &[
        FigureSpec {
            id: "fig03",
            needs: &["example1"],
            run: |ctx, _| fig03(ctx),
        },
        FigureSpec {
            id: "fig04",
            needs: &["example1"],
            run: |ctx, _| fig04(ctx),
        },
        FigureSpec {
            id: "fig05",
            needs: &["example1"],
            run: |ctx, _| fig05(ctx),
        },
        FigureSpec {
            id: "fig06",
            needs: &["example1"],
            run: |ctx, _| fig06(ctx),
        },
        FigureSpec {
            id: "fig09",
            needs: &["example2"],
            run: |ctx, _| fig09(ctx),
        },
        FigureSpec {
            id: "fig11",
            needs: &["example3"],
            run: |ctx, _| fig11(ctx),
        },
        FigureSpec {
            id: "fig14",
            needs: &["example4"],
            run: |ctx, _| fig14(ctx),
        },
        FigureSpec {
            id: "fig15",
            needs: &["example2"],
            run: |_, full| fig15(full),
        },
        FigureSpec {
            id: "fig16",
            needs: &["example3"],
            run: |_, full| fig16(full),
        },
        FigureSpec {
            id: "storage",
            needs: &["example1"],
            run: |ctx, _| storage_footprints(ctx),
        },
    ]
}

/// All reports the context can produce (figure order); a full context
/// yields all ten.
pub fn all_reports(ctx: &FigureCtx, full_scale: bool) -> Vec<FigureReport> {
    figure_specs()
        .iter()
        .filter(|spec| spec.needs.iter().all(|n| ctx.has(n)))
        .map(|spec| (spec.run)(ctx, full_scale))
        .collect()
}

/// Helper for benches: the Example 1 row schedule.
pub fn example1_row_schedule() -> (aov_ir::Program, Schedule) {
    let p = examples::example1();
    let s = Schedule::uniform_for(&p, &[AffineExpr::from_i64(&[0, 1, 0, 0], 0)]);
    (p, s)
}

/// Helper for benches: schedule-space dimension of a program.
pub fn schedule_space_dim(p: &aov_ir::Program) -> usize {
    ScheduleSpace::new(p).dim()
}

/// Sanity helper shared by bins: panic (nonzero exit) when a report
/// fails to reproduce.
pub fn assert_reproduced(r: &FigureReport) {
    assert!(
        r.reproduced,
        "{} failed to reproduce:\n{}",
        r.id,
        r.render()
    );
}

/// Quick legality probe used by the explorer example and tests.
pub fn is_legal(p: &aov_ir::Program, s: &Schedule) -> bool {
    legal::is_legal(p, s)
}
