//! Differential profiling: comparing two `aov-profile/1` artifacts.
//!
//! `aov pdiff BASE NEW` answers the question the next optimization PR
//! will be refereed by: *where* did the time, the allocations and the
//! solver effort move between two runs — per span, not per wall clock.
//! Both artifacts are flattened into namespaced metrics and judged with
//! the same noise-aware band semantics as the bench regression gate
//! ([`crate::regress`]):
//!
//! * span self/total times — [`MetricClass::Time`]: a change gates only
//!   when it clears both the relative band and the absolute floor
//!   (converted to microseconds, the floor's unit),
//! * span call counts, allocation counts and counter deltas —
//!   [`MetricClass::Count`]: a narrow relative band absorbs incidental
//!   ordering drift,
//! * the program name and its IR digest — [`MetricClass::Exact`]:
//!   diffing profiles of two different inputs is itself the error,
//! * spans present on only one side are `New`/`Missing` — reported,
//!   never gating (an instrumentation PR must not trip its own gate).
//!
//! Two profiles of identical runs therefore always diff clean, and the
//! flame-diff report ([`render`]) shows every span side by side sorted
//! by where the biggest self-time movement happened.

use crate::regress::{compare_metrics, Comparison, Metric, MetricClass, Status, Tolerance};
use aov_support::Json;

fn as_f64(v: &Json) -> f64 {
    match v {
        Json::Int(i) => *i as f64,
        Json::Float(f) => *f,
        _ => 0.0,
    }
}

/// Flattens one `aov-profile/1` document into comparable metrics.
/// Tolerant of partially-formed documents, like `regress::flatten`;
/// strict validation is `aov inspect --check`'s job.
pub fn flatten_profile(doc: &Json) -> Vec<Metric> {
    let mut out = Vec::new();
    let mut push = |key: String, class: MetricClass, value: Json| {
        out.push(Metric { key, class, value });
    };
    if let Some(p) = doc.get("program") {
        push("program".to_string(), MetricClass::Exact, p.clone());
    }
    if let Some(d) = doc.get("identity").and_then(|i| i.get("program_digest")) {
        push("program_digest".to_string(), MetricClass::Exact, d.clone());
    }
    if let Some(w) = doc.get("wall_us") {
        push("wall_us".to_string(), MetricClass::Time, w.clone());
    }
    if let Some(Json::Arr(rows)) = doc.get("flame") {
        for r in rows {
            let Some(Json::Str(name)) = r.get("name") else {
                continue;
            };
            // Times are stored in nanoseconds but judged in
            // microseconds — the unit of the Time tolerance floor.
            for (field, key) in [("self_ns", "self_us"), ("total_ns", "total_us")] {
                if let Some(v) = r.get(field) {
                    push(
                        format!("span.{name}.{key}"),
                        MetricClass::Time,
                        Json::Float(as_f64(v) / 1000.0),
                    );
                }
            }
            for field in ["count", "allocs", "max_bits"] {
                if let Some(v) = r.get(field) {
                    push(
                        format!("span.{name}.{field}"),
                        MetricClass::Count,
                        v.clone(),
                    );
                }
            }
        }
    }
    if let Some(Json::Arr(counters)) = doc.get("counters") {
        for c in counters {
            if let (Some(Json::Str(name)), Some(count)) = (c.get("name"), c.get("count")) {
                push(format!("counter.{name}"), MetricClass::Count, count.clone());
            }
        }
    }
    out
}

/// Compares two parsed profile documents.
pub fn diff(base: &Json, current: &Json, tol: &Tolerance) -> Comparison {
    compare_metrics(&flatten_profile(base), &flatten_profile(current), tol)
}

/// One flame row's numbers, for the side-by-side report.
#[derive(Default, Clone, Copy)]
struct RowSide {
    present: bool,
    count: u64,
    self_ns: u64,
    alloc_bytes: u64,
}

fn row_sides(doc: &Json) -> Vec<(String, RowSide)> {
    let mut out = Vec::new();
    if let Some(Json::Arr(rows)) = doc.get("flame") {
        for r in rows {
            if let Some(Json::Str(name)) = r.get("name") {
                let num = |f: &str| r.get(f).map_or(0, |v| as_f64(v) as u64);
                out.push((
                    name.clone(),
                    RowSide {
                        present: true,
                        count: num("count"),
                        self_ns: num("self_ns"),
                        alloc_bytes: num("alloc_bytes"),
                    },
                ));
            }
        }
    }
    out
}

/// Renders the grouped flame-diff report: a header identifying both
/// runs, every span side by side (union of both flame tables, sorted by
/// absolute self-time movement), then the non-`Within` counter deltas,
/// then the gate summary line.
pub fn render(base: &Json, current: &Json, cmp: &Comparison) -> String {
    let prog = |d: &Json| match d.get("program") {
        Some(Json::Str(s)) => s.clone(),
        _ => "?".to_string(),
    };
    let wall = |d: &Json| d.get("wall_us").map_or(0.0, as_f64);
    let mut out = format!(
        "profile diff: {} ({:.3} s) → {} ({:.3} s)\n",
        prog(base),
        wall(base) / 1e6,
        prog(current),
        wall(current) / 1e6,
    );

    // Union of span names, each with both sides.
    let mut rows: Vec<(String, RowSide, RowSide)> = Vec::new();
    for (name, side) in row_sides(base) {
        rows.push((name, side, RowSide::default()));
    }
    for (name, side) in row_sides(current) {
        match rows.iter_mut().find(|(n, _, _)| *n == name) {
            Some((_, _, cur)) => *cur = side,
            None => rows.push((name, RowSide::default(), side)),
        }
    }
    rows.sort_by_key(|(_, b, c)| std::cmp::Reverse(b.self_ns.abs_diff(c.self_ns)));

    let verdict_of = |key: &str| {
        cmp.deltas
            .iter()
            .find(|d| d.key == key)
            .map_or("-", |d| match d.status {
                Status::Within => "within",
                Status::Improved => "improved",
                Status::Regressed => "REGRESSED",
                Status::New => "new",
                Status::Missing => "missing",
            })
    };
    let ms = |ns: u64| ns as f64 / 1e6;
    out.push_str(&format!(
        "{:<34} {:>10} {:>12} {:>12} {:>8} {:>10}  {}\n",
        "span", "calls", "self(base)", "self(new)", "Δ%", "Δbytes", "verdict"
    ));
    for (name, b, c) in &rows {
        let pct = if b.self_ns == 0 {
            f64::INFINITY
        } else {
            (ms(c.self_ns) - ms(b.self_ns)) / ms(b.self_ns) * 100.0
        };
        let pct_str = if !b.present || !c.present {
            "-".to_string()
        } else if pct.is_infinite() {
            "inf".to_string()
        } else {
            format!("{pct:+.1}")
        };
        let dbytes = c.alloc_bytes as i128 - b.alloc_bytes as i128;
        out.push_str(&format!(
            "{:<34} {:>10} {:>12} {:>12} {:>8} {:>10}  {}\n",
            name,
            if c.present { c.count } else { b.count },
            if b.present {
                format!("{:.3} ms", ms(b.self_ns))
            } else {
                "-".to_string()
            },
            if c.present {
                format!("{:.3} ms", ms(c.self_ns))
            } else {
                "-".to_string()
            },
            pct_str,
            if dbytes == 0 {
                "=".to_string()
            } else {
                format!("{dbytes:+}")
            },
            verdict_of(&format!("span.{name}.self_us")),
        ));
    }

    let moved: Vec<_> = cmp
        .deltas
        .iter()
        .filter(|d| d.key.starts_with("counter.") && d.status != Status::Within)
        .collect();
    if !moved.is_empty() {
        out.push_str("counters that moved:\n");
        for d in moved {
            out.push_str(&format!(
                "  {:<9} {:<44} {}\n",
                verdict_of(&d.key),
                d.key,
                d.note
            ));
        }
    }
    out.push_str(&format!(
        "summary: {} regressed, {} improved, {} within noise, {} new, {} missing\n",
        cmp.count(Status::Regressed),
        cmp.count(Status::Improved),
        cmp.count(Status::Within),
        cmp.count(Status::New),
        cmp.count(Status::Missing),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal synthetic profile with two spans and one counter.
    fn profile(p2_self_ns: i64, dd_self_ns: i64, dd_calls: i64, vertices: i64) -> Json {
        let row = |name: &str, self_ns: i64, count: i64| {
            Json::obj()
                .field("name", name)
                .field("count", count)
                .field("total_ns", self_ns * 2)
                .field("self_ns", self_ns)
                .field("p50_ns", 100)
                .field("p95_ns", 200)
                .field("allocs", 10)
                .field("alloc_bytes", 4096)
                .field("alloc_peak", 2048)
                .field("max_bits", 8)
        };
        Json::obj()
            .field("schema", "aov-profile/1")
            .field("program", "example1")
            .field("workers", 1)
            .field("health", "ok")
            .field("wall_us", 300_000)
            .field(
                "flame",
                vec![
                    row("pipeline.problem2", p2_self_ns, 1),
                    row("p2.dd.step", dd_self_ns, dd_calls),
                ],
            )
            .field(
                "counters",
                vec![Json::obj()
                    .field("name", "polyhedra.dd.vertices")
                    .field("count", vertices)],
            )
            .field(
                "identity",
                Json::obj()
                    .field("version", "0.1.0")
                    .field("program_digest", "feedface00000000")
                    .field("flame_digest", "0123456789abcdef"),
            )
    }

    fn status_of(c: &Comparison, key: &str) -> Status {
        c.deltas
            .iter()
            .find(|d| d.key == key)
            .unwrap_or_else(|| panic!("no delta for {key}"))
            .status
    }

    #[test]
    fn self_diff_is_clean() {
        let a = profile(140_000_000, 90_000_000, 3551, 5499);
        let cmp = diff(&a, &a, &Tolerance::default());
        assert!(!cmp.has_regressions());
        assert_eq!(cmp.count(Status::Within), cmp.deltas.len());
        let report = render(&a, &a, &cmp);
        assert!(report.contains("summary: 0 regressed"), "{report}");
    }

    #[test]
    fn improvement_is_reported_not_gating() {
        let base = profile(140_000_000, 90_000_000, 3551, 5499);
        let cur = profile(20_000_000, 90_000_000, 3551, 5499);
        let cmp = diff(&base, &cur, &Tolerance::default());
        assert!(!cmp.has_regressions());
        assert_eq!(
            status_of(&cmp, "span.pipeline.problem2.self_us"),
            Status::Improved
        );
        assert!(render(&base, &cur, &cmp).contains("improved"));
    }

    #[test]
    fn span_self_time_regression_gates() {
        let base = profile(140_000_000, 90_000_000, 3551, 5499);
        let cur = profile(400_000_000, 90_000_000, 3551, 5499);
        let cmp = diff(&base, &cur, &Tolerance::default());
        assert!(cmp.has_regressions());
        assert_eq!(
            status_of(&cmp, "span.pipeline.problem2.self_us"),
            Status::Regressed
        );
        assert!(render(&base, &cur, &cmp).contains("REGRESSED"));
    }

    #[test]
    fn jitter_inside_band_does_not_gate() {
        // +30% self time and +2% vertices: both inside their bands.
        let base = profile(140_000_000, 90_000_000, 3551, 5499);
        let cur = profile(182_000_000, 90_000_000, 3551, 5600);
        let cmp = diff(&base, &cur, &Tolerance::default());
        assert!(!cmp.has_regressions());
    }

    #[test]
    fn tiny_absolute_moves_never_gate() {
        // 2 ms → 6 ms self (4 → 12 ms total) is +200% but every move
        // stays under the 10 ms floor.
        let base = profile(2_000_000, 1_000_000, 3551, 5499);
        let cur = profile(6_000_000, 1_000_000, 3551, 5499);
        let cmp = diff(&base, &cur, &Tolerance::default());
        assert!(!cmp.has_regressions());
    }

    #[test]
    fn counter_blowup_gates_and_is_rendered() {
        let base = profile(140_000_000, 90_000_000, 3551, 5499);
        let cur = profile(140_000_000, 90_000_000, 3551, 12_000);
        let cmp = diff(&base, &cur, &Tolerance::default());
        assert_eq!(
            status_of(&cmp, "counter.polyhedra.dd.vertices"),
            Status::Regressed
        );
        let report = render(&base, &cur, &cmp);
        assert!(report.contains("counters that moved"), "{report}");
    }

    /// Appends one flame row to a profile document in place.
    fn push_row(doc: &mut Json, name: &str, self_ns: i64) {
        let Json::Obj(fields) = doc else {
            panic!("profile must be an object");
        };
        for (k, v) in fields.iter_mut() {
            if k == "flame" {
                let Json::Arr(rows) = v else {
                    panic!("flame must be an array");
                };
                rows.push(
                    Json::obj()
                        .field("name", name)
                        .field("count", 12)
                        .field("self_ns", self_ns),
                );
            }
        }
    }

    #[test]
    fn new_span_never_gates() {
        let base = profile(140_000_000, 90_000_000, 3551, 5499);
        let mut cur = profile(140_000_000, 90_000_000, 3551, 5499);
        push_row(&mut cur, "p2.vertex_enum", 5_000_000);
        let cmp = diff(&base, &cur, &Tolerance::default());
        assert!(!cmp.has_regressions());
        assert_eq!(status_of(&cmp, "span.p2.vertex_enum.self_us"), Status::New);
        // The new span still shows up in the flame-diff table.
        assert!(render(&base, &cur, &cmp).contains("p2.vertex_enum"));
    }

    #[test]
    fn missing_span_never_gates() {
        let mut base = profile(140_000_000, 90_000_000, 3551, 5499);
        push_row(&mut base, "old.monolith", 50_000_000);
        let cur = profile(140_000_000, 90_000_000, 3551, 5499);
        let cmp = diff(&base, &cur, &Tolerance::default());
        assert!(!cmp.has_regressions());
        assert_eq!(
            status_of(&cmp, "span.old.monolith.self_us"),
            Status::Missing
        );
    }

    #[test]
    fn diffing_different_programs_is_an_error_by_exact_class() {
        let base = profile(140_000_000, 90_000_000, 3551, 5499);
        let mut cur = profile(140_000_000, 90_000_000, 3551, 5499);
        if let Json::Obj(fields) = &mut cur {
            for (k, v) in fields.iter_mut() {
                if k == "program" {
                    *v = Json::Str("example3".to_string());
                }
            }
        }
        let cmp = diff(&base, &cur, &Tolerance::default());
        assert!(cmp.has_regressions());
        assert_eq!(status_of(&cmp, "program"), Status::Regressed);
    }
}
