//! Regenerates the paper's 04 artifact; exits nonzero if the
//! qualitative claim fails to reproduce.
fn main() {
    let r = aov_bench::fig04();
    print!("{}", r.render());
    aov_bench::assert_reproduced(&r);
}
