//! Regenerates every evaluation artifact and writes
//! `target/figures.json`; exits nonzero if any qualitative claim fails.
//! Pass `--quick` for smaller machine sweeps.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let ctx = aov_bench::FigureCtx::build_all(aov_bench::default_workers()).expect("pipelines run");
    let reports = aov_bench::all_reports(&ctx, !quick);
    let mut failures = 0;
    for r in &reports {
        print!("{}", r.render());
        if !r.reproduced {
            failures += 1;
        }
    }
    use aov_support::ToJson;
    let json = reports.to_json().to_pretty();
    let path = std::path::Path::new("target").join("figures.json");
    if std::fs::write(&path, json).is_ok() {
        println!("(wrote {})", path.display());
    }
    println!("{} artifacts, {} failures", reports.len(), failures);
    assert_eq!(failures, 0, "{failures} artifacts failed to reproduce");
}
