//! Regenerates the paper's 03 artifact; exits nonzero if the
//! qualitative claim fails to reproduce.
fn main() {
    let r = aov_bench::fig03();
    print!("{}", r.render());
    aov_bench::assert_reproduced(&r);
}
