//! Prints original and transformed pseudo-code for all four examples
//! (the paper's Figures 2, 6, 9, 11 and 14).
use aov_core::{codegen, problems, transform::StorageTransform};

fn main() {
    for p in [
        aov_ir::examples::example1(),
        aov_ir::examples::example2(),
        aov_ir::examples::example3(),
        aov_ir::examples::example4(),
    ] {
        println!("==== {} ====", p.name());
        println!("-- original --\n{}", codegen::original_code(&p));
        let r = problems::aov(&p).expect("AOV solvable");
        let ts: Vec<StorageTransform> = p
            .arrays()
            .iter()
            .enumerate()
            .map(|(aidx, a)| {
                let v = r.vector_for(a.name()).expect("vector per array");
                StorageTransform::new(&p, aov_ir::ArrayId(aidx), v).expect("transformable")
            })
            .collect();
        println!(
            "-- transformed under AOVs --\n{}",
            codegen::transformed_code(&p, &ts)
        );
    }
}
