//! Prints original and transformed pseudo-code for all four examples
//! (the paper's Figures 2, 6, 9, 11 and 14). The transformed code comes
//! from the instrumented pipeline's codegen stage.
use aov_core::codegen;

fn main() {
    let ctx = aov_bench::FigureCtx::build_all(aov_bench::default_workers()).expect("pipelines run");
    for name in aov_bench::EXAMPLES {
        let p = ctx.program(name);
        println!("==== {} ====", p.name());
        println!("-- original --\n{}", codegen::original_code(p));
        println!("-- transformed under AOVs --\n{}", ctx.code(name));
    }
}
