//! Figure 15: speedup vs processors for Example 2 (diagonal strips).
//! Pass `--quick` for a smaller sweep.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let r = aov_bench::fig15(!quick);
    print!("{}", r.render());
    aov_bench::assert_reproduced(&r);
}
