//! Figure 16: speedup vs processors for Example 3 (blocked wavefront).
//! Pass `--quick` for a smaller sweep.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let r = aov_bench::fig16(!quick);
    print!("{}", r.render());
    aov_bench::assert_reproduced(&r);
}
