//! §5.1.4 / §7: AOV vs the Strout et al. UOV baseline on Example 1.
fn main() {
    let r = aov_bench::fig05();
    print!("{}", r.render());
    aov_bench::assert_reproduced(&r);
}
