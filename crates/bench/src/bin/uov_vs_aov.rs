//! §5.1.4 / §7: AOV vs the Strout et al. UOV baseline on Example 1.
fn main() {
    let ctx = aov_bench::FigureCtx::build(&["example1"], aov_bench::default_workers())
        .expect("pipeline runs");
    let r = aov_bench::fig05(&ctx);
    print!("{}", r.render());
    aov_bench::assert_reproduced(&r);
}
