//! Regenerates the paper's 05 artifact; exits nonzero if the
//! qualitative claim fails to reproduce.
fn main() {
    let ctx = aov_bench::FigureCtx::build(&["example1"], aov_bench::default_workers())
        .expect("pipeline runs");
    let r = aov_bench::fig05(&ctx);
    print!("{}", r.render());
    aov_bench::assert_reproduced(&r);
}
