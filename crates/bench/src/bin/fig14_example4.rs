//! Regenerates the paper's 14 artifact; exits nonzero if the
//! qualitative claim fails to reproduce.
fn main() {
    let ctx = aov_bench::FigureCtx::build(&["example4"], aov_bench::default_workers())
        .expect("pipeline runs");
    let r = aov_bench::fig14(&ctx);
    print!("{}", r.render());
    aov_bench::assert_reproduced(&r);
}
