//! Criterion benchmarks of the paper's analyses, one per evaluation
//! artifact (Figures 3–14). Example 3's full AOV is benched through its
//! dominant component (schedule-constraint generation) because a single
//! solve takes ~a minute; the `fig11_example3` binary runs it end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig03_ov_for_schedule(c: &mut Criterion) {
    let (p, s) = aov_bench::example1_row_schedule();
    c.bench_function("fig03/ov_for_schedule/example1", |b| {
        b.iter(|| aov_core::problems::ov_for_schedule(black_box(&p), black_box(&s)).unwrap())
    });
}

fn bench_fig04_schedules_for_ov(c: &mut Criterion) {
    let p = aov_ir::examples::example1();
    let v = aov_core::OccupancyVector::new(vec![0, 2]);
    c.bench_function("fig04/schedules_for_ov/example1", |b| {
        b.iter(|| aov_core::problems::schedules_for_ov(black_box(&p), &[v.clone()]).unwrap())
    });
}

fn bench_fig05_aov_example1(c: &mut Criterion) {
    let p = aov_ir::examples::example1();
    c.bench_function("fig05/aov/example1", |b| {
        b.iter(|| aov_core::problems::aov(black_box(&p)).unwrap())
    });
}

fn bench_fig05_uov_baseline(c: &mut Criterion) {
    let p = aov_ir::examples::example1();
    c.bench_function("fig05/uov_baseline/example1", |b| {
        b.iter(|| aov_core::uov::shortest_uov(black_box(&p), aov_ir::ArrayId(0), 6).unwrap())
    });
}

fn bench_fig06_transform(c: &mut Criterion) {
    let p = aov_ir::examples::example1();
    let a = p.array_by_name("A").unwrap();
    let v = aov_core::OccupancyVector::new(vec![1, 2]);
    c.bench_function("fig06/storage_transform/example1", |b| {
        b.iter(|| aov_core::transform::StorageTransform::new(black_box(&p), a, &v).unwrap())
    });
}

fn bench_fig09_aov_example2(c: &mut Criterion) {
    let p = aov_ir::examples::example2();
    let mut g = c.benchmark_group("fig09");
    g.sample_size(10);
    g.bench_function("aov/example2", |b| {
        b.iter(|| aov_core::problems::aov(black_box(&p)).unwrap())
    });
    g.finish();
}

fn bench_fig11_components(c: &mut Criterion) {
    let p = aov_ir::examples::example3();
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.bench_function("schedule_constraints/example3", |b| {
        b.iter(|| aov_schedule::legal::schedule_constraints(black_box(&p)).unwrap())
    });
    g.bench_function("dependences/example3", |b| {
        b.iter(|| aov_ir::analysis::dependences(black_box(&p)))
    });
    g.finish();
}

fn bench_fig14_aov_example4(c: &mut Criterion) {
    let p = aov_ir::examples::example4();
    let mut g = c.benchmark_group("fig14");
    g.sample_size(10);
    g.bench_function("aov/example4", |b| {
        b.iter(|| aov_core::problems::aov(black_box(&p)).unwrap())
    });
    g.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let p = aov_ir::examples::example2();
    c.bench_function("scheduler/find_schedule/example2", |b| {
        b.iter(|| aov_schedule::scheduler::find_schedule(black_box(&p)).unwrap())
    });
}

fn bench_interp_oracle(c: &mut Criterion) {
    let (p, s) = aov_bench::example1_row_schedule();
    let a = p.array_by_name("A").unwrap();
    let t = aov_core::transform::StorageTransform::new(
        &p,
        a,
        &aov_core::OccupancyVector::new(vec![0, 1]),
    )
    .unwrap();
    c.bench_function("oracle/semantics_preserved/example1_16x16", |b| {
        b.iter(|| {
            aov_interp::validate::semantics_preserved(
                black_box(&p),
                &[16, 16],
                &s,
                std::slice::from_ref(&t),
            )
        })
    });
}

criterion_group!(
    name = analyses;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets =
    bench_fig03_ov_for_schedule,
    bench_fig04_schedules_for_ov,
    bench_fig05_aov_example1,
    bench_fig05_uov_baseline,
    bench_fig06_transform,
    bench_fig09_aov_example2,
    bench_fig11_components,
    bench_fig14_aov_example4,
    bench_scheduler,
    bench_interp_oracle,
);
criterion_main!(analyses);
