//! Benchmarks of the paper's analyses, one per evaluation artifact
//! (Figures 3–14). Example 3's full AOV is benched through its dominant
//! component (schedule-constraint generation) because a single solve
//! takes ~a minute; the `fig11_example3` binary runs it end to end.

use aov_support::bench::Harness;
use std::hint::black_box;

fn main() {
    let mut h = Harness::from_args();

    {
        let (p, s) = aov_bench::example1_row_schedule();
        h.bench("fig03/ov_for_schedule/example1", || {
            aov_core::problems::ov_for_schedule(black_box(&p), black_box(&s)).unwrap()
        });
    }

    {
        let p = aov_ir::examples::example1();
        let v = aov_core::OccupancyVector::new(vec![0, 2]);
        h.bench("fig04/schedules_for_ov/example1", || {
            aov_core::problems::schedules_for_ov(black_box(&p), std::slice::from_ref(&v)).unwrap()
        });
    }

    {
        let p = aov_ir::examples::example1();
        h.bench("fig05/aov/example1", || {
            aov_core::problems::aov(black_box(&p)).unwrap()
        });
        h.bench("fig05/uov_baseline/example1", || {
            aov_core::uov::shortest_uov(black_box(&p), aov_ir::ArrayId(0), 6).unwrap()
        });
    }

    {
        let p = aov_ir::examples::example1();
        let a = p.array_by_name("A").unwrap();
        let v = aov_core::OccupancyVector::new(vec![1, 2]);
        h.bench("fig06/storage_transform/example1", || {
            aov_core::transform::StorageTransform::new(black_box(&p), a, &v).unwrap()
        });
    }

    {
        let p = aov_ir::examples::example2();
        h.bench("fig09/aov/example2", || {
            aov_core::problems::aov(black_box(&p)).unwrap()
        });
    }

    {
        let p = aov_ir::examples::example3();
        h.bench("fig11/schedule_constraints/example3", || {
            aov_schedule::legal::schedule_constraints(black_box(&p)).unwrap()
        });
        h.bench("fig11/dependences/example3", || {
            aov_ir::analysis::dependences(black_box(&p))
        });
    }

    {
        let p = aov_ir::examples::example4();
        h.bench("fig14/aov/example4", || {
            aov_core::problems::aov(black_box(&p)).unwrap()
        });
    }

    {
        let p = aov_ir::examples::example2();
        h.bench("scheduler/find_schedule/example2", || {
            aov_schedule::scheduler::find_schedule(black_box(&p)).unwrap()
        });
    }

    {
        let (p, s) = aov_bench::example1_row_schedule();
        let a = p.array_by_name("A").unwrap();
        let t = aov_core::transform::StorageTransform::new(
            &p,
            a,
            &aov_core::OccupancyVector::new(vec![0, 1]),
        )
        .unwrap();
        h.bench("oracle/semantics_preserved/example1_16x16", || {
            aov_interp::validate::semantics_preserved(
                black_box(&p),
                &[16, 16],
                &s,
                std::slice::from_ref(&t),
            )
        });
    }

    h.finish();
}
