//! Criterion benchmarks of the substrate layers (exact arithmetic, LP,
//! polyhedra) — the knobs that dominate analysis time.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_bigint(c: &mut Criterion) {
    use aov_numeric::BigInt;
    let a = BigInt::from(0x1234_5678_9abc_def0i64).pow(8);
    let b = BigInt::from(0x0fed_cba9_8765_4321i64).pow(5);
    c.bench_function("numeric/bigint_mul_512bit", |bch| {
        bch.iter(|| black_box(&a) * black_box(&b))
    });
    c.bench_function("numeric/bigint_divrem_512bit", |bch| {
        bch.iter(|| black_box(&a).div_rem(black_box(&b)))
    });
}

fn bench_rational_sum(c: &mut Criterion) {
    use aov_numeric::Rational;
    let terms: Vec<Rational> = (1..=60).map(|k| Rational::new(1, k)).collect();
    c.bench_function("numeric/harmonic_sum_60", |b| {
        b.iter(|| terms.iter().cloned().sum::<Rational>())
    });
}

fn bench_simplex(c: &mut Criterion) {
    use aov_linalg::AffineExpr;
    use aov_lp::{Cmp, Model};
    // A 12-var assignment-like LP.
    let build = || {
        let mut m = Model::new();
        for k in 0..12 {
            m.add_nonneg_var(format!("x{k}"));
        }
        for r in 0..8 {
            let coeffs: Vec<i64> = (0..12).map(|k| ((k * 7 + r * 3) % 5) as i64 - 2).collect();
            m.constrain(AffineExpr::from_i64(&coeffs, -(r as i64 + 3)), Cmp::Le);
            m.constrain(AffineExpr::from_i64(&coeffs, 20), Cmp::Ge);
        }
        m.minimize(AffineExpr::from_i64(&[3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8], 0));
        m
    };
    let m = build();
    c.bench_function("lp/simplex_12v_16c", |b| b.iter(|| black_box(&m).solve_lp()));
}

fn bench_dd(c: &mut Criterion) {
    use aov_linalg::AffineExpr;
    use aov_polyhedra::{Constraint, Polyhedron};
    // A 4-d hypercube with two cuts: 10 constraints.
    let mut cs = Vec::new();
    for k in 0..4 {
        let mut lo = vec![0i64; 4];
        lo[k] = 1;
        cs.push(Constraint::ge0(AffineExpr::from_i64(&lo, 0)));
        let mut hi = vec![0i64; 4];
        hi[k] = -1;
        cs.push(Constraint::ge0(AffineExpr::from_i64(&hi, 3)));
    }
    cs.push(Constraint::ge0(AffineExpr::from_i64(&[-1, -1, -1, -1], 9)));
    cs.push(Constraint::ge0(AffineExpr::from_i64(&[1, -1, 1, -1], 2)));
    let p = Polyhedron::from_constraints(4, cs);
    c.bench_function("polyhedra/dd_4cube_cut", |b| {
        b.iter(|| black_box(&p).generators())
    });
    c.bench_function("polyhedra/fm_eliminate_2", |b| {
        b.iter(|| black_box(&p).eliminate_dims(&[1, 3]))
    });
}

fn bench_param_vertices(c: &mut Criterion) {
    use aov_linalg::AffineExpr;
    use aov_polyhedra::{param, Constraint, Polyhedron};
    // The paper's rectangle 1<=i<=n, 1<=j<=m over n, m >= 1.
    let system = Polyhedron::from_constraints(
        4,
        vec![
            Constraint::ge0(AffineExpr::from_i64(&[1, 0, 0, 0], -1)),
            Constraint::ge0(AffineExpr::from_i64(&[-1, 0, 1, 0], 0)),
            Constraint::ge0(AffineExpr::from_i64(&[0, 1, 0, 0], -1)),
            Constraint::ge0(AffineExpr::from_i64(&[0, -1, 0, 1], 0)),
        ],
    );
    let params = Polyhedron::from_constraints(
        2,
        vec![
            Constraint::ge0(AffineExpr::from_i64(&[1, 0], -1)),
            Constraint::ge0(AffineExpr::from_i64(&[0, 1], -1)),
        ],
    );
    c.bench_function("polyhedra/param_vertices_rect", |b| {
        b.iter(|| param::parameterized_vertices(black_box(&system), 2, &params).unwrap())
    });
}

fn bench_dependence_analysis(c: &mut Criterion) {
    let p = aov_ir::examples::example2();
    c.bench_function("ir/dependences/example2", |b| {
        b.iter(|| aov_ir::analysis::dependences(black_box(&p)))
    });
}

criterion_group!(
    name = substrates;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets =
    bench_bigint,
    bench_rational_sum,
    bench_simplex,
    bench_dd,
    bench_param_vertices,
    bench_dependence_analysis,
);
criterion_main!(substrates);
