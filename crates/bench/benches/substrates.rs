//! Benchmarks of the substrate layers (exact arithmetic, LP, polyhedra)
//! — the knobs that dominate analysis time.

use aov_support::bench::Harness;
use std::hint::black_box;

fn main() {
    let mut h = Harness::from_args();

    {
        use aov_numeric::BigInt;
        let a = BigInt::from(0x1234_5678_9abc_def0i64).pow(8);
        let b = BigInt::from(0x0fed_cba9_8765_4321i64).pow(5);
        h.bench("numeric/bigint_mul_512bit", || {
            black_box(&a) * black_box(&b)
        });
        h.bench("numeric/bigint_divrem_512bit", || {
            black_box(&a).div_rem(black_box(&b))
        });
    }

    {
        use aov_numeric::Rational;
        let terms: Vec<Rational> = (1..=60).map(|k| Rational::new(1, k)).collect();
        h.bench("numeric/harmonic_sum_60", || {
            terms.iter().cloned().sum::<Rational>()
        });
    }

    {
        use aov_linalg::AffineExpr;
        use aov_lp::{Cmp, Model};
        // A 12-var assignment-like LP.
        let mut m = Model::new();
        for k in 0..12 {
            m.add_nonneg_var(format!("x{k}"));
        }
        for r in 0..8 {
            let coeffs: Vec<i64> = (0..12).map(|k| ((k * 7 + r * 3) % 5) as i64 - 2).collect();
            m.constrain(AffineExpr::from_i64(&coeffs, -(r as i64 + 3)), Cmp::Le);
            m.constrain(AffineExpr::from_i64(&coeffs, 20), Cmp::Ge);
        }
        m.minimize(AffineExpr::from_i64(
            &[3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8],
            0,
        ));
        h.bench("lp/simplex_12v_16c", || black_box(&m).solve_lp());
    }

    {
        use aov_linalg::AffineExpr;
        use aov_polyhedra::{Constraint, Polyhedron};
        // A 4-d hypercube with two cuts: 10 constraints.
        let mut cs = Vec::new();
        for k in 0..4 {
            let mut lo = vec![0i64; 4];
            lo[k] = 1;
            cs.push(Constraint::ge0(AffineExpr::from_i64(&lo, 0)));
            let mut hi = vec![0i64; 4];
            hi[k] = -1;
            cs.push(Constraint::ge0(AffineExpr::from_i64(&hi, 3)));
        }
        cs.push(Constraint::ge0(AffineExpr::from_i64(&[-1, -1, -1, -1], 9)));
        cs.push(Constraint::ge0(AffineExpr::from_i64(&[1, -1, 1, -1], 2)));
        let p = Polyhedron::from_constraints(4, cs);
        h.bench("polyhedra/dd_4cube_cut", || black_box(&p).generators());
        h.bench("polyhedra/fm_eliminate_2", || {
            black_box(&p).eliminate_dims(&[1, 3])
        });
    }

    {
        use aov_linalg::AffineExpr;
        use aov_polyhedra::{param, Constraint, Polyhedron};
        // The paper's rectangle 1<=i<=n, 1<=j<=m over n, m >= 1.
        let system = Polyhedron::from_constraints(
            4,
            vec![
                Constraint::ge0(AffineExpr::from_i64(&[1, 0, 0, 0], -1)),
                Constraint::ge0(AffineExpr::from_i64(&[-1, 0, 1, 0], 0)),
                Constraint::ge0(AffineExpr::from_i64(&[0, 1, 0, 0], -1)),
                Constraint::ge0(AffineExpr::from_i64(&[0, -1, 0, 1], 0)),
            ],
        );
        let params = Polyhedron::from_constraints(
            2,
            vec![
                Constraint::ge0(AffineExpr::from_i64(&[1, 0], -1)),
                Constraint::ge0(AffineExpr::from_i64(&[0, 1], -1)),
            ],
        );
        h.bench("polyhedra/param_vertices_rect", || {
            param::parameterized_vertices(black_box(&system), 2, &params).unwrap()
        });
    }

    {
        let p = aov_ir::examples::example2();
        h.bench("ir/dependences/example2", || {
            aov_ir::analysis::dependences(black_box(&p))
        });
    }

    h.finish();
}
