//! Benchmarks of the machine simulator behind Figures 15–16
//! (small sweeps; the figure binaries run the full-scale versions).

use aov_machine::{experiments, MachineConfig};
use aov_support::bench::Harness;
use std::hint::black_box;

fn main() {
    let mut h = Harness::from_args();

    {
        let cfg = MachineConfig::scaled_down();
        h.bench("fig15/example2_speedup_128x128_p8", || {
            experiments::example2_time(
                black_box(&cfg),
                128,
                128,
                8,
                experiments::Variant::Transformed,
            )
        });
        h.bench("fig15/example2_speedup_curve_small", || {
            experiments::example2_speedup(black_box(&cfg), 96, 96, &[1, 2, 4, 8])
        });
        h.bench("fig16/example3_time_24x48x48_p4", || {
            experiments::example3_time(
                black_box(&cfg),
                24,
                48,
                48,
                4,
                experiments::Variant::Transformed,
            )
        });
    }

    {
        use aov_machine::{Cache, CacheConfig};
        let cfg = CacheConfig {
            size_bytes: 64 << 10,
            line_bytes: 128,
            associativity: 2,
        };
        h.bench("cache/stream_64k", || {
            let mut cache = Cache::new(cfg.clone());
            for k in 0..65_536u64 {
                cache.access(black_box(k * 8));
            }
            cache.stats()
        });
    }

    h.finish();
}
