//! Criterion benchmarks of the machine simulator behind Figures 15–16
//! (small sweeps; the figure binaries run the full-scale versions).

use aov_machine::{experiments, MachineConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig15_simulation(c: &mut Criterion) {
    let cfg = MachineConfig::scaled_down();
    let mut g = c.benchmark_group("fig15");
    g.sample_size(10);
    g.bench_function("example2_speedup_128x128_p8", |b| {
        b.iter(|| {
            experiments::example2_time(
                black_box(&cfg),
                128,
                128,
                8,
                experiments::Variant::Transformed,
            )
        })
    });
    g.bench_function("example2_speedup_curve_small", |b| {
        b.iter(|| experiments::example2_speedup(black_box(&cfg), 96, 96, &[1, 2, 4, 8]))
    });
    g.finish();
}

fn bench_fig16_simulation(c: &mut Criterion) {
    let cfg = MachineConfig::scaled_down();
    let mut g = c.benchmark_group("fig16");
    g.sample_size(10);
    g.bench_function("example3_time_24x48x48_p4", |b| {
        b.iter(|| {
            experiments::example3_time(
                black_box(&cfg),
                24,
                48,
                48,
                4,
                experiments::Variant::Transformed,
            )
        })
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    use aov_machine::{Cache, CacheConfig};
    let cfg = CacheConfig {
        size_bytes: 64 << 10,
        line_bytes: 128,
        associativity: 2,
    };
    c.bench_function("cache/stream_64k", |b| {
        b.iter(|| {
            let mut cache = Cache::new(cfg.clone());
            for k in 0..65_536u64 {
                cache.access(black_box(k * 8));
            }
            cache.stats()
        })
    });
}

criterion_group!(
    name = machine;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_fig15_simulation, bench_fig16_simulation, bench_cache
);
criterion_main!(machine);
