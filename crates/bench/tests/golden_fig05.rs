//! Golden equivalence of the engine-driven and legacy fig05 paths.
//!
//! The observatory rewired every figure through `aov_engine::Pipeline`;
//! this test pins down that the rewiring changed *nothing* in the
//! user-visible output — the engine-driven report byte-matches the
//! direct-computation reference kept in `aov_bench::legacy`.

use aov_support::ToJson;

#[test]
fn engine_driven_fig05_byte_matches_legacy() {
    let ctx = aov_bench::FigureCtx::build(&["example1"], 1).expect("pipeline runs");
    let engine = aov_bench::fig05(&ctx);
    let legacy = aov_bench::legacy::fig05();
    assert_eq!(engine.render(), legacy.render());
    assert_eq!(engine.to_json().to_pretty(), legacy.to_json().to_pretty());
    assert!(engine.reproduced);
}

#[test]
fn memoized_context_yields_identical_fig05() {
    // The observatory builds its contexts with memoization on; the LP
    // memo must be result-transparent all the way to the rendered text.
    let plain = aov_bench::FigureCtx::build(&["example1"], 1).expect("pipeline runs");
    let suite = aov_bench::observatory::run_suite(&aov_bench::observatory::SuiteConfig {
        examples: vec!["example1".to_string()],
        runs: 1,
        workers: 1,
        quick: true,
        figures: false,
        span_rows: 8,
        ..aov_bench::observatory::SuiteConfig::default()
    })
    .expect("suite runs");
    assert_eq!(suite.examples.len(), 1);
    assert_eq!(
        aov_bench::fig05(&plain).render(),
        aov_bench::legacy::fig05().render()
    );
}
