//! End-to-end observatory checks: a real (small) suite run produces a
//! schema-valid artifact, figure selection honors the example subset,
//! and the regression gate fires on an injected slowdown.

use aov_bench::observatory::{self, SuiteConfig};
use aov_bench::regress::{self, Status, Tolerance};
use aov_support::{Json, ToJson};

fn example1_suite(runs: usize) -> observatory::Artifact {
    observatory::run_suite(&SuiteConfig {
        examples: vec!["example1".to_string()],
        runs,
        workers: 1,
        quick: true,
        figures: true,
        span_rows: 8,
        ..SuiteConfig::default()
    })
    .expect("suite runs")
}

#[test]
fn example1_suite_produces_schema_valid_artifact() {
    let artifact = example1_suite(2);
    let doc = artifact.to_json();
    observatory::validate(&doc).expect("artifact matches its own schema");
    assert_eq!(
        doc.get("schema"),
        Some(&Json::Str(observatory::SCHEMA_VERSION.to_string()))
    );

    let e = &artifact.examples[0];
    assert_eq!(e.program, "example1");
    assert_eq!(e.runs, 2);
    assert!(e.wall_us.min <= e.wall_us.median);
    assert!(e.equivalent);
    assert_eq!(e.code_digest.len(), 16, "FNV-1a hex digest");
    assert_eq!(e.aov, vec![("A".to_string(), vec![1, 2])]);
    // The traced first run recorded pipeline root spans.
    let Json::Arr(spans) = &e.spans else {
        panic!("spans should be an array");
    };
    assert!(
        spans
            .iter()
            .any(|s| matches!(s.get("name"), Some(Json::Str(n)) if n.starts_with("pipeline."))),
        "no pipeline spans in {spans:?}"
    );

    // Figure selection: only figures satisfiable from example1 ran.
    let ids: Vec<&str> = artifact.figures.iter().map(|f| f.id.as_str()).collect();
    assert_eq!(ids, ["fig03", "fig04", "fig05", "fig06", "storage"]);
    assert!(artifact.figures.iter().all(|f| f.reproduced));
    assert!(artifact.figures.iter().all(|f| f.digest.len() == 16));
}

#[test]
fn second_run_against_first_stays_clean_and_injected_slowdown_gates() {
    let baseline = example1_suite(1).to_json();
    let current = example1_suite(1).to_json();

    // Same binary, same inputs: results identical, timings within noise
    // (both runs are far below the 10 ms absolute floor per metric or
    // within the relative band — exact metrics must all match).
    let cmp = regress::compare(&baseline, &current, &Tolerance::default());
    assert!(
        !cmp.deltas
            .iter()
            .any(|d| d.status == Status::Regressed && d.note.contains("drifted")),
        "exact metrics drifted between identical runs:\n{}",
        cmp.render()
    );

    // Inject a 100× slowdown into the current wall time: the gate fires.
    let mut slowed = current.clone();
    inject_wall_us(&mut slowed, 100_000_000);
    let cmp = regress::compare(&baseline, &slowed, &Tolerance::default());
    assert!(cmp.has_regressions(), "{}", cmp.render());
    assert!(cmp.render().contains("REGRESSED"));
}

/// Overwrites `examples[0].wall_us.{min,median}` in a parsed artifact.
fn inject_wall_us(doc: &mut Json, us: i64) {
    let Json::Obj(fields) = doc else { panic!() };
    let examples = &mut fields.iter_mut().find(|(k, _)| k == "examples").unwrap().1;
    let Json::Arr(items) = examples else { panic!() };
    let Json::Obj(example) = &mut items[0] else {
        panic!()
    };
    let wall = &mut example.iter_mut().find(|(k, _)| k == "wall_us").unwrap().1;
    *wall = Json::obj().field("min", us).field("median", us);
}
