//! End-to-end observatory checks: a real (small) suite run produces a
//! schema-valid artifact, figure selection honors the example subset,
//! and the regression gate fires on an injected slowdown.

use aov_bench::observatory::{self, SuiteConfig};
use aov_bench::regress::{self, Status, Tolerance};
use aov_support::{Json, ToJson};

fn example1_suite(runs: usize) -> observatory::Artifact {
    observatory::run_suite(&SuiteConfig {
        examples: vec!["example1".to_string()],
        runs,
        workers: 1,
        quick: true,
        figures: true,
        span_rows: 8,
        ..SuiteConfig::default()
    })
    .expect("suite runs")
}

#[test]
fn example1_suite_produces_schema_valid_artifact() {
    let artifact = example1_suite(2);
    let doc = artifact.to_json();
    observatory::validate(&doc).expect("artifact matches its own schema");
    assert_eq!(
        doc.get("schema"),
        Some(&Json::Str(observatory::SCHEMA_VERSION.to_string()))
    );

    let e = &artifact.examples[0];
    assert_eq!(e.program, "example1");
    assert_eq!(e.runs, 2);
    assert!(e.wall_us.min <= e.wall_us.median);
    assert!(e.equivalent);
    assert_eq!(e.code_digest.len(), 16, "FNV-1a hex digest");
    assert_eq!(e.aov, vec![("A".to_string(), vec![1, 2])]);
    // The traced first run recorded pipeline root spans.
    let Json::Arr(spans) = &e.spans else {
        panic!("spans should be an array");
    };
    assert!(
        spans
            .iter()
            .any(|s| matches!(s.get("name"), Some(Json::Str(n)) if n.starts_with("pipeline."))),
        "no pipeline spans in {spans:?}"
    );

    // Figure selection: only figures satisfiable from example1 ran.
    let ids: Vec<&str> = artifact.figures.iter().map(|f| f.id.as_str()).collect();
    assert_eq!(ids, ["fig03", "fig04", "fig05", "fig06", "storage"]);
    assert!(artifact.figures.iter().all(|f| f.reproduced));
    assert!(artifact.figures.iter().all(|f| f.digest.len() == 16));
}

#[test]
fn second_run_against_first_stays_clean_and_injected_slowdown_gates() {
    let baseline = example1_suite(1).to_json();
    let current = example1_suite(1).to_json();

    // Same binary, same inputs: results identical, timings within noise
    // (both runs are far below the 10 ms absolute floor per metric or
    // within the relative band — exact metrics must all match).
    let cmp = regress::compare(&baseline, &current, &Tolerance::default());
    assert!(
        !cmp.deltas
            .iter()
            .any(|d| d.status == Status::Regressed && d.note.contains("drifted")),
        "exact metrics drifted between identical runs:\n{}",
        cmp.render()
    );

    // Inject a 100× slowdown into the current wall time: the gate fires.
    let mut slowed = current.clone();
    inject_wall_us(&mut slowed, 100_000_000);
    let cmp = regress::compare(&baseline, &slowed, &Tolerance::default());
    assert!(cmp.has_regressions(), "{}", cmp.render());
    assert!(cmp.render().contains("REGRESSED"));
}

/// The v1→v2 upgrade shim: the repo's oldest committed baseline parses,
/// upgrades to a schema-valid v2 document with a neutral calibration
/// and a best-effort environment, and the upgraded document round-trips
/// (serialize → reparse → upgrade is the identity).
#[test]
fn v1_artifact_upgrades_to_v2_and_round_trips() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_0.json");
    let text = std::fs::read_to_string(path).expect("BENCH_0.json readable");
    let doc = Json::parse(&text).expect("BENCH_0.json parses");
    assert_eq!(
        doc.get("schema"),
        Some(&Json::Str(observatory::SCHEMA_VERSION_V1.into()))
    );

    let (up, upgraded) = observatory::upgrade(doc).expect("v1 upgrades");
    assert!(upgraded);
    observatory::validate(&up).expect("upgraded document is schema-valid v2");
    assert_eq!(
        up.get("schema"),
        Some(&Json::Str(observatory::SCHEMA_VERSION.into()))
    );
    assert_eq!(
        up.get("upgraded_from"),
        Some(&Json::Str(observatory::SCHEMA_VERSION_V1.into()))
    );
    // v1 never measured the machine: the shim must say so, not invent.
    let cal = aov_support::calibrate::Calibration::from_json(up.get("calibration"));
    assert!(!cal.is_measured());
    // The environment carries what v1 did record: the suite's worker
    // count and each measured program's code digest.
    let env = up.get("environment").expect("environment block");
    assert_eq!(env.get("workers"), up.get("suite").unwrap().get("workers"));
    let Some(Json::Arr(programs)) = env.get("programs") else {
        panic!("programs array missing");
    };
    assert_eq!(programs.len(), 4, "one digest per measured example");

    // Round-trip: an upgraded document re-reads as already current.
    let reparsed = Json::parse(&up.to_pretty()).expect("upgraded doc serializes");
    let (again, upgraded_again) = observatory::upgrade(reparsed.clone()).expect("reparses");
    assert!(!upgraded_again, "upgrade is idempotent");
    assert_eq!(again, reparsed);

    // Unrecognized versions are an error, not a silent pass-through.
    assert!(observatory::upgrade(Json::obj().field("schema", "aov-bench/99")).is_err());
    assert!(observatory::upgrade(Json::obj()).is_err());
}

/// The PR 7 false-positive episode, re-adjudicated: BENCH_3 vs BENCH_2
/// flagged every example3 wall-time movement as a regression because
/// the shared container ran ~45 % slower on recording day. Both
/// artifacts predate calibration, so the comparator's estimated-drift
/// fallback must clear the documented wall-clock false positives —
/// while the PR 6 counter drift (a genuine stale baseline, retired by
/// BENCH_4) keeps flagging: machine speed cannot move a pivot count.
#[test]
fn bench3_vs_bench2_wall_time_false_positives_clear_under_estimated_drift() {
    let load = |name: &str| {
        let path = format!("{}/../../{name}", env!("CARGO_MANIFEST_DIR"));
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
        let (doc, upgraded) =
            observatory::upgrade(Json::parse(&text).expect("artifact parses")).expect("upgrades");
        assert!(upgraded, "{name} is a v1-era artifact");
        doc
    };
    let baseline = load("BENCH_2.json");
    let current = load("BENCH_3.json");
    let cmp = regress::compare(&baseline, &current, &Tolerance::default());

    // Neither side was calibrated, so the drift evidence is estimated.
    assert_eq!(cmp.drift.source, regress::DriftSource::Estimated);
    assert!(
        cmp.drift.factor > 1.0,
        "BENCH_3's recording day was slower: {:?}",
        cmp.drift
    );

    // The documented headline false positive — example3.wall_us
    // 59.5 s → 91.6 s (+53.9 %, just past the ±50 % band) — and every
    // other whole-pipeline wall time must clear once normalized.
    let wall_regressions: Vec<&str> = cmp
        .deltas
        .iter()
        .filter(|d| d.status == Status::Regressed && d.key.ends_with(".wall_us"))
        .map(|d| d.key.as_str())
        .collect();
    assert!(
        wall_regressions.is_empty(),
        "normalized comparator still gates wall times: {wall_regressions:?}\n{}",
        cmp.render()
    );

    // The PR 6 pivot-count drift is *not* laundered: counters are
    // machine-independent, so the stale counter baseline still flags
    // (that is what re-baselining on BENCH_4 is for).
    let d = cmp
        .deltas
        .iter()
        .find(|d| d.key == "example3.counter.lp.simplex.pivots")
        .expect("pivot counter compared");
    assert_eq!(d.status, Status::Regressed, "{}", d.note);
}

/// Overwrites `examples[0].wall_us.{min,median}` in a parsed artifact.
fn inject_wall_us(doc: &mut Json, us: i64) {
    let Json::Obj(fields) = doc else { panic!() };
    let examples = &mut fields.iter_mut().find(|(k, _)| k == "examples").unwrap().1;
    let Json::Arr(items) = examples else { panic!() };
    let Json::Obj(example) = &mut items[0] else {
        panic!()
    };
    let wall = &mut example.iter_mut().find(|(k, _)| k == "wall_us").unwrap().1;
    *wall = Json::obj().field("min", us).field("median", us);
}
