/root/repo/target/release/deps/fig09_example2-595c2b9f0e92a580.d: crates/bench/src/bin/fig09_example2.rs

/root/repo/target/release/deps/fig09_example2-595c2b9f0e92a580: crates/bench/src/bin/fig09_example2.rs

crates/bench/src/bin/fig09_example2.rs:
