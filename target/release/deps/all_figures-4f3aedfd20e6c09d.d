/root/repo/target/release/deps/all_figures-4f3aedfd20e6c09d.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/release/deps/all_figures-4f3aedfd20e6c09d: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
