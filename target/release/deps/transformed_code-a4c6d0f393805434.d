/root/repo/target/release/deps/transformed_code-a4c6d0f393805434.d: crates/bench/src/bin/transformed_code.rs

/root/repo/target/release/deps/transformed_code-a4c6d0f393805434: crates/bench/src/bin/transformed_code.rs

crates/bench/src/bin/transformed_code.rs:
