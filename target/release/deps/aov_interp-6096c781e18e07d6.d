/root/repo/target/release/deps/aov_interp-6096c781e18e07d6.d: crates/interp/src/lib.rs crates/interp/src/domain.rs crates/interp/src/exec.rs crates/interp/src/funcs.rs crates/interp/src/store.rs crates/interp/src/validate.rs

/root/repo/target/release/deps/libaov_interp-6096c781e18e07d6.rlib: crates/interp/src/lib.rs crates/interp/src/domain.rs crates/interp/src/exec.rs crates/interp/src/funcs.rs crates/interp/src/store.rs crates/interp/src/validate.rs

/root/repo/target/release/deps/libaov_interp-6096c781e18e07d6.rmeta: crates/interp/src/lib.rs crates/interp/src/domain.rs crates/interp/src/exec.rs crates/interp/src/funcs.rs crates/interp/src/store.rs crates/interp/src/validate.rs

crates/interp/src/lib.rs:
crates/interp/src/domain.rs:
crates/interp/src/exec.rs:
crates/interp/src/funcs.rs:
crates/interp/src/store.rs:
crates/interp/src/validate.rs:
