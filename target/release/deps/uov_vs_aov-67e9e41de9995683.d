/root/repo/target/release/deps/uov_vs_aov-67e9e41de9995683.d: crates/bench/src/bin/uov_vs_aov.rs

/root/repo/target/release/deps/uov_vs_aov-67e9e41de9995683: crates/bench/src/bin/uov_vs_aov.rs

crates/bench/src/bin/uov_vs_aov.rs:
