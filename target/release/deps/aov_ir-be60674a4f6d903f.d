/root/repo/target/release/deps/aov_ir-be60674a4f6d903f.d: crates/ir/src/lib.rs crates/ir/src/analysis.rs crates/ir/src/examples.rs crates/ir/src/expr.rs crates/ir/src/program.rs

/root/repo/target/release/deps/libaov_ir-be60674a4f6d903f.rlib: crates/ir/src/lib.rs crates/ir/src/analysis.rs crates/ir/src/examples.rs crates/ir/src/expr.rs crates/ir/src/program.rs

/root/repo/target/release/deps/libaov_ir-be60674a4f6d903f.rmeta: crates/ir/src/lib.rs crates/ir/src/analysis.rs crates/ir/src/examples.rs crates/ir/src/expr.rs crates/ir/src/program.rs

crates/ir/src/lib.rs:
crates/ir/src/analysis.rs:
crates/ir/src/examples.rs:
crates/ir/src/expr.rs:
crates/ir/src/program.rs:
