/root/repo/target/release/deps/aov_numeric-7d2bcea9f8bf0c09.d: crates/numeric/src/lib.rs crates/numeric/src/bigint.rs crates/numeric/src/gcd.rs crates/numeric/src/rational.rs

/root/repo/target/release/deps/libaov_numeric-7d2bcea9f8bf0c09.rlib: crates/numeric/src/lib.rs crates/numeric/src/bigint.rs crates/numeric/src/gcd.rs crates/numeric/src/rational.rs

/root/repo/target/release/deps/libaov_numeric-7d2bcea9f8bf0c09.rmeta: crates/numeric/src/lib.rs crates/numeric/src/bigint.rs crates/numeric/src/gcd.rs crates/numeric/src/rational.rs

crates/numeric/src/lib.rs:
crates/numeric/src/bigint.rs:
crates/numeric/src/gcd.rs:
crates/numeric/src/rational.rs:
