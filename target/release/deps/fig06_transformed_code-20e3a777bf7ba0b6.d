/root/repo/target/release/deps/fig06_transformed_code-20e3a777bf7ba0b6.d: crates/bench/src/bin/fig06_transformed_code.rs

/root/repo/target/release/deps/fig06_transformed_code-20e3a777bf7ba0b6: crates/bench/src/bin/fig06_transformed_code.rs

crates/bench/src/bin/fig06_transformed_code.rs:
