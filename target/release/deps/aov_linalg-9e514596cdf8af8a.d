/root/repo/target/release/deps/aov_linalg-9e514596cdf8af8a.d: crates/linalg/src/lib.rs crates/linalg/src/affine.rs crates/linalg/src/lattice.rs crates/linalg/src/matrix.rs crates/linalg/src/vector.rs

/root/repo/target/release/deps/libaov_linalg-9e514596cdf8af8a.rlib: crates/linalg/src/lib.rs crates/linalg/src/affine.rs crates/linalg/src/lattice.rs crates/linalg/src/matrix.rs crates/linalg/src/vector.rs

/root/repo/target/release/deps/libaov_linalg-9e514596cdf8af8a.rmeta: crates/linalg/src/lib.rs crates/linalg/src/affine.rs crates/linalg/src/lattice.rs crates/linalg/src/matrix.rs crates/linalg/src/vector.rs

crates/linalg/src/lib.rs:
crates/linalg/src/affine.rs:
crates/linalg/src/lattice.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/vector.rs:
