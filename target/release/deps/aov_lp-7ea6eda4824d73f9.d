/root/repo/target/release/deps/aov_lp-7ea6eda4824d73f9.d: crates/lp/src/lib.rs crates/lp/src/branch_bound.rs crates/lp/src/memo.rs crates/lp/src/model.rs crates/lp/src/simplex.rs

/root/repo/target/release/deps/libaov_lp-7ea6eda4824d73f9.rlib: crates/lp/src/lib.rs crates/lp/src/branch_bound.rs crates/lp/src/memo.rs crates/lp/src/model.rs crates/lp/src/simplex.rs

/root/repo/target/release/deps/libaov_lp-7ea6eda4824d73f9.rmeta: crates/lp/src/lib.rs crates/lp/src/branch_bound.rs crates/lp/src/memo.rs crates/lp/src/model.rs crates/lp/src/simplex.rs

crates/lp/src/lib.rs:
crates/lp/src/branch_bound.rs:
crates/lp/src/memo.rs:
crates/lp/src/model.rs:
crates/lp/src/simplex.rs:
