/root/repo/target/release/deps/fig15_speedup_example2-425a14adb241e16a.d: crates/bench/src/bin/fig15_speedup_example2.rs

/root/repo/target/release/deps/fig15_speedup_example2-425a14adb241e16a: crates/bench/src/bin/fig15_speedup_example2.rs

crates/bench/src/bin/fig15_speedup_example2.rs:
