/root/repo/target/release/deps/aov-b4b73a22f26232d8.d: crates/engine/src/bin/aov.rs

/root/repo/target/release/deps/aov-b4b73a22f26232d8: crates/engine/src/bin/aov.rs

crates/engine/src/bin/aov.rs:
