/root/repo/target/release/deps/aov_engine-2289a8192ee4d55e.d: crates/engine/src/lib.rs crates/engine/src/pipeline.rs

/root/repo/target/release/deps/libaov_engine-2289a8192ee4d55e.rlib: crates/engine/src/lib.rs crates/engine/src/pipeline.rs

/root/repo/target/release/deps/libaov_engine-2289a8192ee4d55e.rmeta: crates/engine/src/lib.rs crates/engine/src/pipeline.rs

crates/engine/src/lib.rs:
crates/engine/src/pipeline.rs:
