/root/repo/target/release/deps/fig03_ov_given_schedule-8646aa5247cd66a0.d: crates/bench/src/bin/fig03_ov_given_schedule.rs

/root/repo/target/release/deps/fig03_ov_given_schedule-8646aa5247cd66a0: crates/bench/src/bin/fig03_ov_given_schedule.rs

crates/bench/src/bin/fig03_ov_given_schedule.rs:
