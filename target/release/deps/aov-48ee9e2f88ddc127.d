/root/repo/target/release/deps/aov-48ee9e2f88ddc127.d: src/lib.rs

/root/repo/target/release/deps/libaov-48ee9e2f88ddc127.rlib: src/lib.rs

/root/repo/target/release/deps/libaov-48ee9e2f88ddc127.rmeta: src/lib.rs

src/lib.rs:
