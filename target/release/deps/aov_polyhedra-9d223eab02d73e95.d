/root/repo/target/release/deps/aov_polyhedra-9d223eab02d73e95.d: crates/polyhedra/src/lib.rs crates/polyhedra/src/constraint.rs crates/polyhedra/src/dd.rs crates/polyhedra/src/fm.rs crates/polyhedra/src/param.rs crates/polyhedra/src/polyhedron.rs

/root/repo/target/release/deps/libaov_polyhedra-9d223eab02d73e95.rlib: crates/polyhedra/src/lib.rs crates/polyhedra/src/constraint.rs crates/polyhedra/src/dd.rs crates/polyhedra/src/fm.rs crates/polyhedra/src/param.rs crates/polyhedra/src/polyhedron.rs

/root/repo/target/release/deps/libaov_polyhedra-9d223eab02d73e95.rmeta: crates/polyhedra/src/lib.rs crates/polyhedra/src/constraint.rs crates/polyhedra/src/dd.rs crates/polyhedra/src/fm.rs crates/polyhedra/src/param.rs crates/polyhedra/src/polyhedron.rs

crates/polyhedra/src/lib.rs:
crates/polyhedra/src/constraint.rs:
crates/polyhedra/src/dd.rs:
crates/polyhedra/src/fm.rs:
crates/polyhedra/src/param.rs:
crates/polyhedra/src/polyhedron.rs:
