/root/repo/target/release/deps/fig16_speedup_example3-a70e066ee2c6d0c3.d: crates/bench/src/bin/fig16_speedup_example3.rs

/root/repo/target/release/deps/fig16_speedup_example3-a70e066ee2c6d0c3: crates/bench/src/bin/fig16_speedup_example3.rs

crates/bench/src/bin/fig16_speedup_example3.rs:
