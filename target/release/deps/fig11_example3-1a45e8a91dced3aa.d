/root/repo/target/release/deps/fig11_example3-1a45e8a91dced3aa.d: crates/bench/src/bin/fig11_example3.rs

/root/repo/target/release/deps/fig11_example3-1a45e8a91dced3aa: crates/bench/src/bin/fig11_example3.rs

crates/bench/src/bin/fig11_example3.rs:
