/root/repo/target/release/deps/fig05_aov_example1-49cd04489127cbd3.d: crates/bench/src/bin/fig05_aov_example1.rs

/root/repo/target/release/deps/fig05_aov_example1-49cd04489127cbd3: crates/bench/src/bin/fig05_aov_example1.rs

crates/bench/src/bin/fig05_aov_example1.rs:
