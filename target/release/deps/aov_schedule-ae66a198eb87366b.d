/root/repo/target/release/deps/aov_schedule-ae66a198eb87366b.d: crates/schedule/src/lib.rs crates/schedule/src/bilinear.rs crates/schedule/src/farkas.rs crates/schedule/src/legal.rs crates/schedule/src/linearize.rs crates/schedule/src/scheduler.rs crates/schedule/src/space.rs

/root/repo/target/release/deps/libaov_schedule-ae66a198eb87366b.rlib: crates/schedule/src/lib.rs crates/schedule/src/bilinear.rs crates/schedule/src/farkas.rs crates/schedule/src/legal.rs crates/schedule/src/linearize.rs crates/schedule/src/scheduler.rs crates/schedule/src/space.rs

/root/repo/target/release/deps/libaov_schedule-ae66a198eb87366b.rmeta: crates/schedule/src/lib.rs crates/schedule/src/bilinear.rs crates/schedule/src/farkas.rs crates/schedule/src/legal.rs crates/schedule/src/linearize.rs crates/schedule/src/scheduler.rs crates/schedule/src/space.rs

crates/schedule/src/lib.rs:
crates/schedule/src/bilinear.rs:
crates/schedule/src/farkas.rs:
crates/schedule/src/legal.rs:
crates/schedule/src/linearize.rs:
crates/schedule/src/scheduler.rs:
crates/schedule/src/space.rs:
