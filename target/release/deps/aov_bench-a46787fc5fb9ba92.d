/root/repo/target/release/deps/aov_bench-a46787fc5fb9ba92.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libaov_bench-a46787fc5fb9ba92.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libaov_bench-a46787fc5fb9ba92.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
