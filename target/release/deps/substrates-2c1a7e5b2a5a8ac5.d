/root/repo/target/release/deps/substrates-2c1a7e5b2a5a8ac5.d: crates/bench/benches/substrates.rs

/root/repo/target/release/deps/substrates-2c1a7e5b2a5a8ac5: crates/bench/benches/substrates.rs

crates/bench/benches/substrates.rs:
