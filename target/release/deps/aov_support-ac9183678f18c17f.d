/root/repo/target/release/deps/aov_support-ac9183678f18c17f.d: crates/support/src/lib.rs crates/support/src/bench.rs crates/support/src/counters.rs crates/support/src/json.rs crates/support/src/prop.rs crates/support/src/rng.rs

/root/repo/target/release/deps/libaov_support-ac9183678f18c17f.rlib: crates/support/src/lib.rs crates/support/src/bench.rs crates/support/src/counters.rs crates/support/src/json.rs crates/support/src/prop.rs crates/support/src/rng.rs

/root/repo/target/release/deps/libaov_support-ac9183678f18c17f.rmeta: crates/support/src/lib.rs crates/support/src/bench.rs crates/support/src/counters.rs crates/support/src/json.rs crates/support/src/prop.rs crates/support/src/rng.rs

crates/support/src/lib.rs:
crates/support/src/bench.rs:
crates/support/src/counters.rs:
crates/support/src/json.rs:
crates/support/src/prop.rs:
crates/support/src/rng.rs:
