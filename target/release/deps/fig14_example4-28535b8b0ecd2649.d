/root/repo/target/release/deps/fig14_example4-28535b8b0ecd2649.d: crates/bench/src/bin/fig14_example4.rs

/root/repo/target/release/deps/fig14_example4-28535b8b0ecd2649: crates/bench/src/bin/fig14_example4.rs

crates/bench/src/bin/fig14_example4.rs:
