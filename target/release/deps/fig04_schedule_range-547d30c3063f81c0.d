/root/repo/target/release/deps/fig04_schedule_range-547d30c3063f81c0.d: crates/bench/src/bin/fig04_schedule_range.rs

/root/repo/target/release/deps/fig04_schedule_range-547d30c3063f81c0: crates/bench/src/bin/fig04_schedule_range.rs

crates/bench/src/bin/fig04_schedule_range.rs:
