/root/repo/target/release/deps/aov_machine-a6430bbe824e7ca6.d: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/experiments.rs crates/machine/src/layout.rs crates/machine/src/parallel.rs

/root/repo/target/release/deps/libaov_machine-a6430bbe824e7ca6.rlib: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/experiments.rs crates/machine/src/layout.rs crates/machine/src/parallel.rs

/root/repo/target/release/deps/libaov_machine-a6430bbe824e7ca6.rmeta: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/experiments.rs crates/machine/src/layout.rs crates/machine/src/parallel.rs

crates/machine/src/lib.rs:
crates/machine/src/cache.rs:
crates/machine/src/experiments.rs:
crates/machine/src/layout.rs:
crates/machine/src/parallel.rs:
