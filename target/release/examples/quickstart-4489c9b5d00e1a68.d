/root/repo/target/release/examples/quickstart-4489c9b5d00e1a68.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-4489c9b5d00e1a68: examples/quickstart.rs

examples/quickstart.rs:
