/root/repo/target/debug/deps/fig09_example2-66ef930e360653de.d: crates/bench/src/bin/fig09_example2.rs

/root/repo/target/debug/deps/fig09_example2-66ef930e360653de: crates/bench/src/bin/fig09_example2.rs

crates/bench/src/bin/fig09_example2.rs:
