/root/repo/target/debug/deps/aov_support-43f0c2344ee80e1e.d: crates/support/src/lib.rs crates/support/src/bench.rs crates/support/src/counters.rs crates/support/src/json.rs crates/support/src/prop.rs crates/support/src/rng.rs Cargo.toml

/root/repo/target/debug/deps/libaov_support-43f0c2344ee80e1e.rmeta: crates/support/src/lib.rs crates/support/src/bench.rs crates/support/src/counters.rs crates/support/src/json.rs crates/support/src/prop.rs crates/support/src/rng.rs Cargo.toml

crates/support/src/lib.rs:
crates/support/src/bench.rs:
crates/support/src/counters.rs:
crates/support/src/json.rs:
crates/support/src/prop.rs:
crates/support/src/rng.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
