/root/repo/target/debug/deps/properties-d961dedd5088c7fd.d: crates/polyhedra/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-d961dedd5088c7fd.rmeta: crates/polyhedra/tests/properties.rs Cargo.toml

crates/polyhedra/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
