/root/repo/target/debug/deps/aov_bench-7610f413c36c1567.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/aov_bench-7610f413c36c1567: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
