/root/repo/target/debug/deps/substrates-07285d5066a3bd64.d: crates/bench/benches/substrates.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrates-07285d5066a3bd64.rmeta: crates/bench/benches/substrates.rs Cargo.toml

crates/bench/benches/substrates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
