/root/repo/target/debug/deps/transformed_code-04072dcda028a326.d: crates/bench/src/bin/transformed_code.rs

/root/repo/target/debug/deps/transformed_code-04072dcda028a326: crates/bench/src/bin/transformed_code.rs

crates/bench/src/bin/transformed_code.rs:
