/root/repo/target/debug/deps/aov_ir-7c50bb079a1f0917.d: crates/ir/src/lib.rs crates/ir/src/analysis.rs crates/ir/src/expr.rs crates/ir/src/examples.rs crates/ir/src/program.rs

/root/repo/target/debug/deps/aov_ir-7c50bb079a1f0917: crates/ir/src/lib.rs crates/ir/src/analysis.rs crates/ir/src/expr.rs crates/ir/src/examples.rs crates/ir/src/program.rs

crates/ir/src/lib.rs:
crates/ir/src/analysis.rs:
crates/ir/src/expr.rs:
crates/ir/src/examples.rs:
crates/ir/src/program.rs:
