/root/repo/target/debug/deps/fig04_schedule_range-135e469d62727a45.d: crates/bench/src/bin/fig04_schedule_range.rs Cargo.toml

/root/repo/target/debug/deps/libfig04_schedule_range-135e469d62727a45.rmeta: crates/bench/src/bin/fig04_schedule_range.rs Cargo.toml

crates/bench/src/bin/fig04_schedule_range.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
