/root/repo/target/debug/deps/analyses-624cf96b01f354c3.d: crates/bench/benches/analyses.rs Cargo.toml

/root/repo/target/debug/deps/libanalyses-624cf96b01f354c3.rmeta: crates/bench/benches/analyses.rs Cargo.toml

crates/bench/benches/analyses.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
