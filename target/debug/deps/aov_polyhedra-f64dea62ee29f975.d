/root/repo/target/debug/deps/aov_polyhedra-f64dea62ee29f975.d: crates/polyhedra/src/lib.rs crates/polyhedra/src/constraint.rs crates/polyhedra/src/dd.rs crates/polyhedra/src/fm.rs crates/polyhedra/src/param.rs crates/polyhedra/src/polyhedron.rs

/root/repo/target/debug/deps/aov_polyhedra-f64dea62ee29f975: crates/polyhedra/src/lib.rs crates/polyhedra/src/constraint.rs crates/polyhedra/src/dd.rs crates/polyhedra/src/fm.rs crates/polyhedra/src/param.rs crates/polyhedra/src/polyhedron.rs

crates/polyhedra/src/lib.rs:
crates/polyhedra/src/constraint.rs:
crates/polyhedra/src/dd.rs:
crates/polyhedra/src/fm.rs:
crates/polyhedra/src/param.rs:
crates/polyhedra/src/polyhedron.rs:
