/root/repo/target/debug/deps/aov-c725042036eb973d.d: crates/engine/src/bin/aov.rs Cargo.toml

/root/repo/target/debug/deps/libaov-c725042036eb973d.rmeta: crates/engine/src/bin/aov.rs Cargo.toml

crates/engine/src/bin/aov.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
