/root/repo/target/debug/deps/substrates-d837a85e4a927649.d: crates/bench/benches/substrates.rs

/root/repo/target/debug/deps/substrates-d837a85e4a927649: crates/bench/benches/substrates.rs

crates/bench/benches/substrates.rs:
