/root/repo/target/debug/deps/aov_schedule-1878e14e3c795130.d: crates/schedule/src/lib.rs crates/schedule/src/bilinear.rs crates/schedule/src/farkas.rs crates/schedule/src/legal.rs crates/schedule/src/linearize.rs crates/schedule/src/scheduler.rs crates/schedule/src/space.rs

/root/repo/target/debug/deps/aov_schedule-1878e14e3c795130: crates/schedule/src/lib.rs crates/schedule/src/bilinear.rs crates/schedule/src/farkas.rs crates/schedule/src/legal.rs crates/schedule/src/linearize.rs crates/schedule/src/scheduler.rs crates/schedule/src/space.rs

crates/schedule/src/lib.rs:
crates/schedule/src/bilinear.rs:
crates/schedule/src/farkas.rs:
crates/schedule/src/legal.rs:
crates/schedule/src/linearize.rs:
crates/schedule/src/scheduler.rs:
crates/schedule/src/space.rs:
