/root/repo/target/debug/deps/aov_bench-12faa4968ff2c35c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/aov_bench-12faa4968ff2c35c: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
