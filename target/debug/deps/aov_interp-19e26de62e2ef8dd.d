/root/repo/target/debug/deps/aov_interp-19e26de62e2ef8dd.d: crates/interp/src/lib.rs crates/interp/src/domain.rs crates/interp/src/exec.rs crates/interp/src/funcs.rs crates/interp/src/store.rs crates/interp/src/validate.rs

/root/repo/target/debug/deps/libaov_interp-19e26de62e2ef8dd.rlib: crates/interp/src/lib.rs crates/interp/src/domain.rs crates/interp/src/exec.rs crates/interp/src/funcs.rs crates/interp/src/store.rs crates/interp/src/validate.rs

/root/repo/target/debug/deps/libaov_interp-19e26de62e2ef8dd.rmeta: crates/interp/src/lib.rs crates/interp/src/domain.rs crates/interp/src/exec.rs crates/interp/src/funcs.rs crates/interp/src/store.rs crates/interp/src/validate.rs

crates/interp/src/lib.rs:
crates/interp/src/domain.rs:
crates/interp/src/exec.rs:
crates/interp/src/funcs.rs:
crates/interp/src/store.rs:
crates/interp/src/validate.rs:
