/root/repo/target/debug/deps/aov_linalg-2272002858e27e45.d: crates/linalg/src/lib.rs crates/linalg/src/affine.rs crates/linalg/src/lattice.rs crates/linalg/src/matrix.rs crates/linalg/src/vector.rs

/root/repo/target/debug/deps/aov_linalg-2272002858e27e45: crates/linalg/src/lib.rs crates/linalg/src/affine.rs crates/linalg/src/lattice.rs crates/linalg/src/matrix.rs crates/linalg/src/vector.rs

crates/linalg/src/lib.rs:
crates/linalg/src/affine.rs:
crates/linalg/src/lattice.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/vector.rs:
