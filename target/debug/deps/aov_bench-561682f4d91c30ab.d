/root/repo/target/debug/deps/aov_bench-561682f4d91c30ab.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libaov_bench-561682f4d91c30ab.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libaov_bench-561682f4d91c30ab.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
