/root/repo/target/debug/deps/aov_lp-650297dea796ddba.d: crates/lp/src/lib.rs crates/lp/src/branch_bound.rs crates/lp/src/model.rs crates/lp/src/simplex.rs

/root/repo/target/debug/deps/libaov_lp-650297dea796ddba.rlib: crates/lp/src/lib.rs crates/lp/src/branch_bound.rs crates/lp/src/model.rs crates/lp/src/simplex.rs

/root/repo/target/debug/deps/libaov_lp-650297dea796ddba.rmeta: crates/lp/src/lib.rs crates/lp/src/branch_bound.rs crates/lp/src/model.rs crates/lp/src/simplex.rs

crates/lp/src/lib.rs:
crates/lp/src/branch_bound.rs:
crates/lp/src/model.rs:
crates/lp/src/simplex.rs:
