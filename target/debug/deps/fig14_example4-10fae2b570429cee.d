/root/repo/target/debug/deps/fig14_example4-10fae2b570429cee.d: crates/bench/src/bin/fig14_example4.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_example4-10fae2b570429cee.rmeta: crates/bench/src/bin/fig14_example4.rs Cargo.toml

crates/bench/src/bin/fig14_example4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
