/root/repo/target/debug/deps/fig05_aov_example1-cd68e1e5950e03bd.d: crates/bench/src/bin/fig05_aov_example1.rs

/root/repo/target/debug/deps/fig05_aov_example1-cd68e1e5950e03bd: crates/bench/src/bin/fig05_aov_example1.rs

crates/bench/src/bin/fig05_aov_example1.rs:
