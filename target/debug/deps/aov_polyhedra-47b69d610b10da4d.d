/root/repo/target/debug/deps/aov_polyhedra-47b69d610b10da4d.d: crates/polyhedra/src/lib.rs crates/polyhedra/src/constraint.rs crates/polyhedra/src/dd.rs crates/polyhedra/src/fm.rs crates/polyhedra/src/param.rs crates/polyhedra/src/polyhedron.rs Cargo.toml

/root/repo/target/debug/deps/libaov_polyhedra-47b69d610b10da4d.rmeta: crates/polyhedra/src/lib.rs crates/polyhedra/src/constraint.rs crates/polyhedra/src/dd.rs crates/polyhedra/src/fm.rs crates/polyhedra/src/param.rs crates/polyhedra/src/polyhedron.rs Cargo.toml

crates/polyhedra/src/lib.rs:
crates/polyhedra/src/constraint.rs:
crates/polyhedra/src/dd.rs:
crates/polyhedra/src/fm.rs:
crates/polyhedra/src/param.rs:
crates/polyhedra/src/polyhedron.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
