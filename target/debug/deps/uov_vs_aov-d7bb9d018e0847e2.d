/root/repo/target/debug/deps/uov_vs_aov-d7bb9d018e0847e2.d: crates/bench/src/bin/uov_vs_aov.rs

/root/repo/target/debug/deps/uov_vs_aov-d7bb9d018e0847e2: crates/bench/src/bin/uov_vs_aov.rs

crates/bench/src/bin/uov_vs_aov.rs:
