/root/repo/target/debug/deps/aov_machine-59ed2836f6f36c4e.d: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/experiments.rs crates/machine/src/layout.rs crates/machine/src/parallel.rs

/root/repo/target/debug/deps/aov_machine-59ed2836f6f36c4e: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/experiments.rs crates/machine/src/layout.rs crates/machine/src/parallel.rs

crates/machine/src/lib.rs:
crates/machine/src/cache.rs:
crates/machine/src/experiments.rs:
crates/machine/src/layout.rs:
crates/machine/src/parallel.rs:
