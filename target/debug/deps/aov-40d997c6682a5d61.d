/root/repo/target/debug/deps/aov-40d997c6682a5d61.d: crates/engine/src/bin/aov.rs

/root/repo/target/debug/deps/aov-40d997c6682a5d61: crates/engine/src/bin/aov.rs

crates/engine/src/bin/aov.rs:
