/root/repo/target/debug/deps/fig06_transformed_code-098a53b1aecc013e.d: crates/bench/src/bin/fig06_transformed_code.rs

/root/repo/target/debug/deps/fig06_transformed_code-098a53b1aecc013e: crates/bench/src/bin/fig06_transformed_code.rs

crates/bench/src/bin/fig06_transformed_code.rs:
