/root/repo/target/debug/deps/aov_ir-52fa736a2e3ffff5.d: crates/ir/src/lib.rs crates/ir/src/analysis.rs crates/ir/src/examples.rs crates/ir/src/expr.rs crates/ir/src/program.rs

/root/repo/target/debug/deps/aov_ir-52fa736a2e3ffff5: crates/ir/src/lib.rs crates/ir/src/analysis.rs crates/ir/src/examples.rs crates/ir/src/expr.rs crates/ir/src/program.rs

crates/ir/src/lib.rs:
crates/ir/src/analysis.rs:
crates/ir/src/examples.rs:
crates/ir/src/expr.rs:
crates/ir/src/program.rs:
