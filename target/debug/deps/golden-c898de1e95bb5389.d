/root/repo/target/debug/deps/golden-c898de1e95bb5389.d: crates/engine/tests/golden.rs

/root/repo/target/debug/deps/golden-c898de1e95bb5389: crates/engine/tests/golden.rs

crates/engine/tests/golden.rs:
