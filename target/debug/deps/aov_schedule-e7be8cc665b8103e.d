/root/repo/target/debug/deps/aov_schedule-e7be8cc665b8103e.d: crates/schedule/src/lib.rs crates/schedule/src/bilinear.rs crates/schedule/src/farkas.rs crates/schedule/src/legal.rs crates/schedule/src/linearize.rs crates/schedule/src/scheduler.rs crates/schedule/src/space.rs

/root/repo/target/debug/deps/libaov_schedule-e7be8cc665b8103e.rlib: crates/schedule/src/lib.rs crates/schedule/src/bilinear.rs crates/schedule/src/farkas.rs crates/schedule/src/legal.rs crates/schedule/src/linearize.rs crates/schedule/src/scheduler.rs crates/schedule/src/space.rs

/root/repo/target/debug/deps/libaov_schedule-e7be8cc665b8103e.rmeta: crates/schedule/src/lib.rs crates/schedule/src/bilinear.rs crates/schedule/src/farkas.rs crates/schedule/src/legal.rs crates/schedule/src/linearize.rs crates/schedule/src/scheduler.rs crates/schedule/src/space.rs

crates/schedule/src/lib.rs:
crates/schedule/src/bilinear.rs:
crates/schedule/src/farkas.rs:
crates/schedule/src/legal.rs:
crates/schedule/src/linearize.rs:
crates/schedule/src/scheduler.rs:
crates/schedule/src/space.rs:
