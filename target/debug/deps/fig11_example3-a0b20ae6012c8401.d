/root/repo/target/debug/deps/fig11_example3-a0b20ae6012c8401.d: crates/bench/src/bin/fig11_example3.rs

/root/repo/target/debug/deps/fig11_example3-a0b20ae6012c8401: crates/bench/src/bin/fig11_example3.rs

crates/bench/src/bin/fig11_example3.rs:
