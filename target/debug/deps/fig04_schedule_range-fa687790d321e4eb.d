/root/repo/target/debug/deps/fig04_schedule_range-fa687790d321e4eb.d: crates/bench/src/bin/fig04_schedule_range.rs

/root/repo/target/debug/deps/fig04_schedule_range-fa687790d321e4eb: crates/bench/src/bin/fig04_schedule_range.rs

crates/bench/src/bin/fig04_schedule_range.rs:
