/root/repo/target/debug/deps/fig16_speedup_example3-ae4cd4f31ff20469.d: crates/bench/src/bin/fig16_speedup_example3.rs Cargo.toml

/root/repo/target/debug/deps/libfig16_speedup_example3-ae4cd4f31ff20469.rmeta: crates/bench/src/bin/fig16_speedup_example3.rs Cargo.toml

crates/bench/src/bin/fig16_speedup_example3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
