/root/repo/target/debug/deps/aov_support-4beed2074b9f9a5b.d: crates/support/src/lib.rs crates/support/src/bench.rs crates/support/src/counters.rs crates/support/src/json.rs crates/support/src/prop.rs crates/support/src/rng.rs

/root/repo/target/debug/deps/libaov_support-4beed2074b9f9a5b.rlib: crates/support/src/lib.rs crates/support/src/bench.rs crates/support/src/counters.rs crates/support/src/json.rs crates/support/src/prop.rs crates/support/src/rng.rs

/root/repo/target/debug/deps/libaov_support-4beed2074b9f9a5b.rmeta: crates/support/src/lib.rs crates/support/src/bench.rs crates/support/src/counters.rs crates/support/src/json.rs crates/support/src/prop.rs crates/support/src/rng.rs

crates/support/src/lib.rs:
crates/support/src/bench.rs:
crates/support/src/counters.rs:
crates/support/src/json.rs:
crates/support/src/prop.rs:
crates/support/src/rng.rs:
