/root/repo/target/debug/deps/aov_ir-fe0eb3fd20a086b2.d: crates/ir/src/lib.rs crates/ir/src/analysis.rs crates/ir/src/examples.rs crates/ir/src/expr.rs crates/ir/src/program.rs

/root/repo/target/debug/deps/libaov_ir-fe0eb3fd20a086b2.rlib: crates/ir/src/lib.rs crates/ir/src/analysis.rs crates/ir/src/examples.rs crates/ir/src/expr.rs crates/ir/src/program.rs

/root/repo/target/debug/deps/libaov_ir-fe0eb3fd20a086b2.rmeta: crates/ir/src/lib.rs crates/ir/src/analysis.rs crates/ir/src/examples.rs crates/ir/src/expr.rs crates/ir/src/program.rs

crates/ir/src/lib.rs:
crates/ir/src/analysis.rs:
crates/ir/src/examples.rs:
crates/ir/src/expr.rs:
crates/ir/src/program.rs:
