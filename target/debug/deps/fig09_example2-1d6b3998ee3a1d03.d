/root/repo/target/debug/deps/fig09_example2-1d6b3998ee3a1d03.d: crates/bench/src/bin/fig09_example2.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_example2-1d6b3998ee3a1d03.rmeta: crates/bench/src/bin/fig09_example2.rs Cargo.toml

crates/bench/src/bin/fig09_example2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
