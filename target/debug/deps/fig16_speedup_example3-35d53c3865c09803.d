/root/repo/target/debug/deps/fig16_speedup_example3-35d53c3865c09803.d: crates/bench/src/bin/fig16_speedup_example3.rs

/root/repo/target/debug/deps/fig16_speedup_example3-35d53c3865c09803: crates/bench/src/bin/fig16_speedup_example3.rs

crates/bench/src/bin/fig16_speedup_example3.rs:
