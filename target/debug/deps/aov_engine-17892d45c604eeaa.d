/root/repo/target/debug/deps/aov_engine-17892d45c604eeaa.d: crates/engine/src/lib.rs crates/engine/src/pipeline.rs

/root/repo/target/debug/deps/aov_engine-17892d45c604eeaa: crates/engine/src/lib.rs crates/engine/src/pipeline.rs

crates/engine/src/lib.rs:
crates/engine/src/pipeline.rs:
