/root/repo/target/debug/deps/fig11_example3-a1d299ea1534d052.d: crates/bench/src/bin/fig11_example3.rs

/root/repo/target/debug/deps/fig11_example3-a1d299ea1534d052: crates/bench/src/bin/fig11_example3.rs

crates/bench/src/bin/fig11_example3.rs:
