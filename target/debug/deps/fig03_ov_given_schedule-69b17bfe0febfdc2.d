/root/repo/target/debug/deps/fig03_ov_given_schedule-69b17bfe0febfdc2.d: crates/bench/src/bin/fig03_ov_given_schedule.rs Cargo.toml

/root/repo/target/debug/deps/libfig03_ov_given_schedule-69b17bfe0febfdc2.rmeta: crates/bench/src/bin/fig03_ov_given_schedule.rs Cargo.toml

crates/bench/src/bin/fig03_ov_given_schedule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
