/root/repo/target/debug/deps/fig03_ov_given_schedule-3b480b07656e1c9b.d: crates/bench/src/bin/fig03_ov_given_schedule.rs

/root/repo/target/debug/deps/fig03_ov_given_schedule-3b480b07656e1c9b: crates/bench/src/bin/fig03_ov_given_schedule.rs

crates/bench/src/bin/fig03_ov_given_schedule.rs:
