/root/repo/target/debug/deps/aov_machine-c54a9a061227ee17.d: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/experiments.rs crates/machine/src/layout.rs crates/machine/src/parallel.rs

/root/repo/target/debug/deps/libaov_machine-c54a9a061227ee17.rlib: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/experiments.rs crates/machine/src/layout.rs crates/machine/src/parallel.rs

/root/repo/target/debug/deps/libaov_machine-c54a9a061227ee17.rmeta: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/experiments.rs crates/machine/src/layout.rs crates/machine/src/parallel.rs

crates/machine/src/lib.rs:
crates/machine/src/cache.rs:
crates/machine/src/experiments.rs:
crates/machine/src/layout.rs:
crates/machine/src/parallel.rs:
