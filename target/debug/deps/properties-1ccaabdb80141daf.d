/root/repo/target/debug/deps/properties-1ccaabdb80141daf.d: crates/numeric/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-1ccaabdb80141daf.rmeta: crates/numeric/tests/properties.rs Cargo.toml

crates/numeric/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
