/root/repo/target/debug/deps/transformed_code-e1cfe8c4d484ddba.d: crates/bench/src/bin/transformed_code.rs Cargo.toml

/root/repo/target/debug/deps/libtransformed_code-e1cfe8c4d484ddba.rmeta: crates/bench/src/bin/transformed_code.rs Cargo.toml

crates/bench/src/bin/transformed_code.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
