/root/repo/target/debug/deps/fig05_aov_example1-8925a28f8dcaf9b8.d: crates/bench/src/bin/fig05_aov_example1.rs

/root/repo/target/debug/deps/fig05_aov_example1-8925a28f8dcaf9b8: crates/bench/src/bin/fig05_aov_example1.rs

crates/bench/src/bin/fig05_aov_example1.rs:
