/root/repo/target/debug/deps/all_figures-49ad14aceba4ca7f.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/debug/deps/all_figures-49ad14aceba4ca7f: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
