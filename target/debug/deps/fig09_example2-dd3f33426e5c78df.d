/root/repo/target/debug/deps/fig09_example2-dd3f33426e5c78df.d: crates/bench/src/bin/fig09_example2.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_example2-dd3f33426e5c78df.rmeta: crates/bench/src/bin/fig09_example2.rs Cargo.toml

crates/bench/src/bin/fig09_example2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
