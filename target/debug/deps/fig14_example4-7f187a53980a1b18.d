/root/repo/target/debug/deps/fig14_example4-7f187a53980a1b18.d: crates/bench/src/bin/fig14_example4.rs

/root/repo/target/debug/deps/fig14_example4-7f187a53980a1b18: crates/bench/src/bin/fig14_example4.rs

crates/bench/src/bin/fig14_example4.rs:
