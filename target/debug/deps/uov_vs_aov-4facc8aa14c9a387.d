/root/repo/target/debug/deps/uov_vs_aov-4facc8aa14c9a387.d: crates/bench/src/bin/uov_vs_aov.rs Cargo.toml

/root/repo/target/debug/deps/libuov_vs_aov-4facc8aa14c9a387.rmeta: crates/bench/src/bin/uov_vs_aov.rs Cargo.toml

crates/bench/src/bin/uov_vs_aov.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
