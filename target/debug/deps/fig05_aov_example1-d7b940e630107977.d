/root/repo/target/debug/deps/fig05_aov_example1-d7b940e630107977.d: crates/bench/src/bin/fig05_aov_example1.rs Cargo.toml

/root/repo/target/debug/deps/libfig05_aov_example1-d7b940e630107977.rmeta: crates/bench/src/bin/fig05_aov_example1.rs Cargo.toml

crates/bench/src/bin/fig05_aov_example1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
