/root/repo/target/debug/deps/aov-5d39d1c052e488d6.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libaov-5d39d1c052e488d6.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
