/root/repo/target/debug/deps/golden-ab72ea849cf601c9.d: crates/engine/tests/golden.rs Cargo.toml

/root/repo/target/debug/deps/libgolden-ab72ea849cf601c9.rmeta: crates/engine/tests/golden.rs Cargo.toml

crates/engine/tests/golden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
