/root/repo/target/debug/deps/properties-c68d79966dea0d90.d: crates/linalg/tests/properties.rs

/root/repo/target/debug/deps/properties-c68d79966dea0d90: crates/linalg/tests/properties.rs

crates/linalg/tests/properties.rs:
