/root/repo/target/debug/deps/aov_linalg-a2596d36f7f93253.d: crates/linalg/src/lib.rs crates/linalg/src/affine.rs crates/linalg/src/lattice.rs crates/linalg/src/matrix.rs crates/linalg/src/vector.rs Cargo.toml

/root/repo/target/debug/deps/libaov_linalg-a2596d36f7f93253.rmeta: crates/linalg/src/lib.rs crates/linalg/src/affine.rs crates/linalg/src/lattice.rs crates/linalg/src/matrix.rs crates/linalg/src/vector.rs Cargo.toml

crates/linalg/src/lib.rs:
crates/linalg/src/affine.rs:
crates/linalg/src/lattice.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/vector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
