/root/repo/target/debug/deps/pipeline-41635f728d3c26b5.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-41635f728d3c26b5: tests/pipeline.rs

tests/pipeline.rs:
