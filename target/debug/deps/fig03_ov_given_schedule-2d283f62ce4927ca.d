/root/repo/target/debug/deps/fig03_ov_given_schedule-2d283f62ce4927ca.d: crates/bench/src/bin/fig03_ov_given_schedule.rs Cargo.toml

/root/repo/target/debug/deps/libfig03_ov_given_schedule-2d283f62ce4927ca.rmeta: crates/bench/src/bin/fig03_ov_given_schedule.rs Cargo.toml

crates/bench/src/bin/fig03_ov_given_schedule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
