/root/repo/target/debug/deps/fig03_ov_given_schedule-93235c4fa6b923ea.d: crates/bench/src/bin/fig03_ov_given_schedule.rs

/root/repo/target/debug/deps/fig03_ov_given_schedule-93235c4fa6b923ea: crates/bench/src/bin/fig03_ov_given_schedule.rs

crates/bench/src/bin/fig03_ov_given_schedule.rs:
