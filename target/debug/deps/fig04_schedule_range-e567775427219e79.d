/root/repo/target/debug/deps/fig04_schedule_range-e567775427219e79.d: crates/bench/src/bin/fig04_schedule_range.rs

/root/repo/target/debug/deps/fig04_schedule_range-e567775427219e79: crates/bench/src/bin/fig04_schedule_range.rs

crates/bench/src/bin/fig04_schedule_range.rs:
