/root/repo/target/debug/deps/aov_polyhedra-c970b7145669e3d5.d: crates/polyhedra/src/lib.rs crates/polyhedra/src/constraint.rs crates/polyhedra/src/dd.rs crates/polyhedra/src/fm.rs crates/polyhedra/src/param.rs crates/polyhedra/src/polyhedron.rs Cargo.toml

/root/repo/target/debug/deps/libaov_polyhedra-c970b7145669e3d5.rmeta: crates/polyhedra/src/lib.rs crates/polyhedra/src/constraint.rs crates/polyhedra/src/dd.rs crates/polyhedra/src/fm.rs crates/polyhedra/src/param.rs crates/polyhedra/src/polyhedron.rs Cargo.toml

crates/polyhedra/src/lib.rs:
crates/polyhedra/src/constraint.rs:
crates/polyhedra/src/dd.rs:
crates/polyhedra/src/fm.rs:
crates/polyhedra/src/param.rs:
crates/polyhedra/src/polyhedron.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
