/root/repo/target/debug/deps/fig11_example3-9ac78acee7de9b30.d: crates/bench/src/bin/fig11_example3.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_example3-9ac78acee7de9b30.rmeta: crates/bench/src/bin/fig11_example3.rs Cargo.toml

crates/bench/src/bin/fig11_example3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
