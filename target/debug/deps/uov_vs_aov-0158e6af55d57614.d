/root/repo/target/debug/deps/uov_vs_aov-0158e6af55d57614.d: crates/bench/src/bin/uov_vs_aov.rs

/root/repo/target/debug/deps/uov_vs_aov-0158e6af55d57614: crates/bench/src/bin/uov_vs_aov.rs

crates/bench/src/bin/uov_vs_aov.rs:
