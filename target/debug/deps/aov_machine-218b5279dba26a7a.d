/root/repo/target/debug/deps/aov_machine-218b5279dba26a7a.d: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/experiments.rs crates/machine/src/layout.rs crates/machine/src/parallel.rs Cargo.toml

/root/repo/target/debug/deps/libaov_machine-218b5279dba26a7a.rmeta: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/experiments.rs crates/machine/src/layout.rs crates/machine/src/parallel.rs Cargo.toml

crates/machine/src/lib.rs:
crates/machine/src/cache.rs:
crates/machine/src/experiments.rs:
crates/machine/src/layout.rs:
crates/machine/src/parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
