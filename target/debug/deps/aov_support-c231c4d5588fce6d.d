/root/repo/target/debug/deps/aov_support-c231c4d5588fce6d.d: crates/support/src/lib.rs crates/support/src/bench.rs crates/support/src/counters.rs crates/support/src/json.rs crates/support/src/prop.rs crates/support/src/rng.rs

/root/repo/target/debug/deps/aov_support-c231c4d5588fce6d: crates/support/src/lib.rs crates/support/src/bench.rs crates/support/src/counters.rs crates/support/src/json.rs crates/support/src/prop.rs crates/support/src/rng.rs

crates/support/src/lib.rs:
crates/support/src/bench.rs:
crates/support/src/counters.rs:
crates/support/src/json.rs:
crates/support/src/prop.rs:
crates/support/src/rng.rs:
