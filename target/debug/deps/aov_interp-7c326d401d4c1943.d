/root/repo/target/debug/deps/aov_interp-7c326d401d4c1943.d: crates/interp/src/lib.rs crates/interp/src/domain.rs crates/interp/src/exec.rs crates/interp/src/funcs.rs crates/interp/src/store.rs crates/interp/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libaov_interp-7c326d401d4c1943.rmeta: crates/interp/src/lib.rs crates/interp/src/domain.rs crates/interp/src/exec.rs crates/interp/src/funcs.rs crates/interp/src/store.rs crates/interp/src/validate.rs Cargo.toml

crates/interp/src/lib.rs:
crates/interp/src/domain.rs:
crates/interp/src/exec.rs:
crates/interp/src/funcs.rs:
crates/interp/src/store.rs:
crates/interp/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
