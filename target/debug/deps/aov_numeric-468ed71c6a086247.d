/root/repo/target/debug/deps/aov_numeric-468ed71c6a086247.d: crates/numeric/src/lib.rs crates/numeric/src/bigint.rs crates/numeric/src/gcd.rs crates/numeric/src/rational.rs Cargo.toml

/root/repo/target/debug/deps/libaov_numeric-468ed71c6a086247.rmeta: crates/numeric/src/lib.rs crates/numeric/src/bigint.rs crates/numeric/src/gcd.rs crates/numeric/src/rational.rs Cargo.toml

crates/numeric/src/lib.rs:
crates/numeric/src/bigint.rs:
crates/numeric/src/gcd.rs:
crates/numeric/src/rational.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
