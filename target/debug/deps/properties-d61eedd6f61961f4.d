/root/repo/target/debug/deps/properties-d61eedd6f61961f4.d: crates/lp/tests/properties.rs

/root/repo/target/debug/deps/properties-d61eedd6f61961f4: crates/lp/tests/properties.rs

crates/lp/tests/properties.rs:
