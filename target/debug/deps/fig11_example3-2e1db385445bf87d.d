/root/repo/target/debug/deps/fig11_example3-2e1db385445bf87d.d: crates/bench/src/bin/fig11_example3.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_example3-2e1db385445bf87d.rmeta: crates/bench/src/bin/fig11_example3.rs Cargo.toml

crates/bench/src/bin/fig11_example3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
