/root/repo/target/debug/deps/aov-6ec84e2ba4b55900.d: crates/engine/src/bin/aov.rs

/root/repo/target/debug/deps/aov-6ec84e2ba4b55900: crates/engine/src/bin/aov.rs

crates/engine/src/bin/aov.rs:
