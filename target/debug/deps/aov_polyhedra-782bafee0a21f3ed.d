/root/repo/target/debug/deps/aov_polyhedra-782bafee0a21f3ed.d: crates/polyhedra/src/lib.rs crates/polyhedra/src/constraint.rs crates/polyhedra/src/dd.rs crates/polyhedra/src/fm.rs crates/polyhedra/src/param.rs crates/polyhedra/src/polyhedron.rs

/root/repo/target/debug/deps/libaov_polyhedra-782bafee0a21f3ed.rlib: crates/polyhedra/src/lib.rs crates/polyhedra/src/constraint.rs crates/polyhedra/src/dd.rs crates/polyhedra/src/fm.rs crates/polyhedra/src/param.rs crates/polyhedra/src/polyhedron.rs

/root/repo/target/debug/deps/libaov_polyhedra-782bafee0a21f3ed.rmeta: crates/polyhedra/src/lib.rs crates/polyhedra/src/constraint.rs crates/polyhedra/src/dd.rs crates/polyhedra/src/fm.rs crates/polyhedra/src/param.rs crates/polyhedra/src/polyhedron.rs

crates/polyhedra/src/lib.rs:
crates/polyhedra/src/constraint.rs:
crates/polyhedra/src/dd.rs:
crates/polyhedra/src/fm.rs:
crates/polyhedra/src/param.rs:
crates/polyhedra/src/polyhedron.rs:
