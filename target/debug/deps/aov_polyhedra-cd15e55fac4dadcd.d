/root/repo/target/debug/deps/aov_polyhedra-cd15e55fac4dadcd.d: crates/polyhedra/src/lib.rs crates/polyhedra/src/constraint.rs crates/polyhedra/src/dd.rs crates/polyhedra/src/fm.rs crates/polyhedra/src/param.rs crates/polyhedra/src/polyhedron.rs

/root/repo/target/debug/deps/libaov_polyhedra-cd15e55fac4dadcd.rlib: crates/polyhedra/src/lib.rs crates/polyhedra/src/constraint.rs crates/polyhedra/src/dd.rs crates/polyhedra/src/fm.rs crates/polyhedra/src/param.rs crates/polyhedra/src/polyhedron.rs

/root/repo/target/debug/deps/libaov_polyhedra-cd15e55fac4dadcd.rmeta: crates/polyhedra/src/lib.rs crates/polyhedra/src/constraint.rs crates/polyhedra/src/dd.rs crates/polyhedra/src/fm.rs crates/polyhedra/src/param.rs crates/polyhedra/src/polyhedron.rs

crates/polyhedra/src/lib.rs:
crates/polyhedra/src/constraint.rs:
crates/polyhedra/src/dd.rs:
crates/polyhedra/src/fm.rs:
crates/polyhedra/src/param.rs:
crates/polyhedra/src/polyhedron.rs:
