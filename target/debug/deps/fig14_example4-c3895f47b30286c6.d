/root/repo/target/debug/deps/fig14_example4-c3895f47b30286c6.d: crates/bench/src/bin/fig14_example4.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_example4-c3895f47b30286c6.rmeta: crates/bench/src/bin/fig14_example4.rs Cargo.toml

crates/bench/src/bin/fig14_example4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
