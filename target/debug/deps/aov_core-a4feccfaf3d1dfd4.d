/root/repo/target/debug/deps/aov_core-a4feccfaf3d1dfd4.d: crates/core/src/lib.rs crates/core/src/check.rs crates/core/src/codegen.rs crates/core/src/multi_ov.rs crates/core/src/objective.rs crates/core/src/ov.rs crates/core/src/problems.rs crates/core/src/storage.rs crates/core/src/tiling.rs crates/core/src/transform.rs crates/core/src/uov.rs Cargo.toml

/root/repo/target/debug/deps/libaov_core-a4feccfaf3d1dfd4.rmeta: crates/core/src/lib.rs crates/core/src/check.rs crates/core/src/codegen.rs crates/core/src/multi_ov.rs crates/core/src/objective.rs crates/core/src/ov.rs crates/core/src/problems.rs crates/core/src/storage.rs crates/core/src/tiling.rs crates/core/src/transform.rs crates/core/src/uov.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/check.rs:
crates/core/src/codegen.rs:
crates/core/src/multi_ov.rs:
crates/core/src/objective.rs:
crates/core/src/ov.rs:
crates/core/src/problems.rs:
crates/core/src/storage.rs:
crates/core/src/tiling.rs:
crates/core/src/transform.rs:
crates/core/src/uov.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
