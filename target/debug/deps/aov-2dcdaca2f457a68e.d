/root/repo/target/debug/deps/aov-2dcdaca2f457a68e.d: src/lib.rs

/root/repo/target/debug/deps/aov-2dcdaca2f457a68e: src/lib.rs

src/lib.rs:
