/root/repo/target/debug/deps/aov-27c7b7e9e476a788.d: crates/engine/src/bin/aov.rs

/root/repo/target/debug/deps/aov-27c7b7e9e476a788: crates/engine/src/bin/aov.rs

crates/engine/src/bin/aov.rs:
