/root/repo/target/debug/deps/transformed_code-09000b3094b019a4.d: crates/bench/src/bin/transformed_code.rs

/root/repo/target/debug/deps/transformed_code-09000b3094b019a4: crates/bench/src/bin/transformed_code.rs

crates/bench/src/bin/transformed_code.rs:
