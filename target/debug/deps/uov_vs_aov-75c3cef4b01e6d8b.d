/root/repo/target/debug/deps/uov_vs_aov-75c3cef4b01e6d8b.d: crates/bench/src/bin/uov_vs_aov.rs

/root/repo/target/debug/deps/uov_vs_aov-75c3cef4b01e6d8b: crates/bench/src/bin/uov_vs_aov.rs

crates/bench/src/bin/uov_vs_aov.rs:
