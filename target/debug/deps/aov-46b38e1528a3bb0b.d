/root/repo/target/debug/deps/aov-46b38e1528a3bb0b.d: src/lib.rs

/root/repo/target/debug/deps/libaov-46b38e1528a3bb0b.rlib: src/lib.rs

/root/repo/target/debug/deps/libaov-46b38e1528a3bb0b.rmeta: src/lib.rs

src/lib.rs:
