/root/repo/target/debug/deps/properties-f9e21df8876b05d4.d: crates/interp/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-f9e21df8876b05d4.rmeta: crates/interp/tests/properties.rs Cargo.toml

crates/interp/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
