/root/repo/target/debug/deps/aov_engine-0c3e2e36bd5e3a0b.d: crates/engine/src/lib.rs crates/engine/src/pipeline.rs

/root/repo/target/debug/deps/libaov_engine-0c3e2e36bd5e3a0b.rlib: crates/engine/src/lib.rs crates/engine/src/pipeline.rs

/root/repo/target/debug/deps/libaov_engine-0c3e2e36bd5e3a0b.rmeta: crates/engine/src/lib.rs crates/engine/src/pipeline.rs

crates/engine/src/lib.rs:
crates/engine/src/pipeline.rs:
