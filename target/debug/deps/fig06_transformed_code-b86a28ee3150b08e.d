/root/repo/target/debug/deps/fig06_transformed_code-b86a28ee3150b08e.d: crates/bench/src/bin/fig06_transformed_code.rs

/root/repo/target/debug/deps/fig06_transformed_code-b86a28ee3150b08e: crates/bench/src/bin/fig06_transformed_code.rs

crates/bench/src/bin/fig06_transformed_code.rs:
