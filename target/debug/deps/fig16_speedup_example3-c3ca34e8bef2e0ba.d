/root/repo/target/debug/deps/fig16_speedup_example3-c3ca34e8bef2e0ba.d: crates/bench/src/bin/fig16_speedup_example3.rs Cargo.toml

/root/repo/target/debug/deps/libfig16_speedup_example3-c3ca34e8bef2e0ba.rmeta: crates/bench/src/bin/fig16_speedup_example3.rs Cargo.toml

crates/bench/src/bin/fig16_speedup_example3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
