/root/repo/target/debug/deps/machine-2908af551a5664ed.d: crates/bench/benches/machine.rs Cargo.toml

/root/repo/target/debug/deps/libmachine-2908af551a5664ed.rmeta: crates/bench/benches/machine.rs Cargo.toml

crates/bench/benches/machine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
