/root/repo/target/debug/deps/properties-deed1ffce4613a17.d: crates/linalg/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-deed1ffce4613a17.rmeta: crates/linalg/tests/properties.rs Cargo.toml

crates/linalg/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
