/root/repo/target/debug/deps/aov-95688cdb7d4b5f7f.d: src/lib.rs

/root/repo/target/debug/deps/aov-95688cdb7d4b5f7f: src/lib.rs

src/lib.rs:
