/root/repo/target/debug/deps/properties-24ada9fb20ba1091.d: crates/numeric/tests/properties.rs

/root/repo/target/debug/deps/properties-24ada9fb20ba1091: crates/numeric/tests/properties.rs

crates/numeric/tests/properties.rs:
