/root/repo/target/debug/deps/fig09_example2-684d2b712bf4169d.d: crates/bench/src/bin/fig09_example2.rs

/root/repo/target/debug/deps/fig09_example2-684d2b712bf4169d: crates/bench/src/bin/fig09_example2.rs

crates/bench/src/bin/fig09_example2.rs:
