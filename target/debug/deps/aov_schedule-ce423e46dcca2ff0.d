/root/repo/target/debug/deps/aov_schedule-ce423e46dcca2ff0.d: crates/schedule/src/lib.rs crates/schedule/src/bilinear.rs crates/schedule/src/farkas.rs crates/schedule/src/legal.rs crates/schedule/src/linearize.rs crates/schedule/src/scheduler.rs crates/schedule/src/space.rs

/root/repo/target/debug/deps/libaov_schedule-ce423e46dcca2ff0.rlib: crates/schedule/src/lib.rs crates/schedule/src/bilinear.rs crates/schedule/src/farkas.rs crates/schedule/src/legal.rs crates/schedule/src/linearize.rs crates/schedule/src/scheduler.rs crates/schedule/src/space.rs

/root/repo/target/debug/deps/libaov_schedule-ce423e46dcca2ff0.rmeta: crates/schedule/src/lib.rs crates/schedule/src/bilinear.rs crates/schedule/src/farkas.rs crates/schedule/src/legal.rs crates/schedule/src/linearize.rs crates/schedule/src/scheduler.rs crates/schedule/src/space.rs

crates/schedule/src/lib.rs:
crates/schedule/src/bilinear.rs:
crates/schedule/src/farkas.rs:
crates/schedule/src/legal.rs:
crates/schedule/src/linearize.rs:
crates/schedule/src/scheduler.rs:
crates/schedule/src/space.rs:
