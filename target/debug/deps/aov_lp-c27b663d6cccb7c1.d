/root/repo/target/debug/deps/aov_lp-c27b663d6cccb7c1.d: crates/lp/src/lib.rs crates/lp/src/branch_bound.rs crates/lp/src/memo.rs crates/lp/src/model.rs crates/lp/src/simplex.rs Cargo.toml

/root/repo/target/debug/deps/libaov_lp-c27b663d6cccb7c1.rmeta: crates/lp/src/lib.rs crates/lp/src/branch_bound.rs crates/lp/src/memo.rs crates/lp/src/model.rs crates/lp/src/simplex.rs Cargo.toml

crates/lp/src/lib.rs:
crates/lp/src/branch_bound.rs:
crates/lp/src/memo.rs:
crates/lp/src/model.rs:
crates/lp/src/simplex.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
