/root/repo/target/debug/deps/transformed_code-5462fd6b2308e0d7.d: crates/bench/src/bin/transformed_code.rs Cargo.toml

/root/repo/target/debug/deps/libtransformed_code-5462fd6b2308e0d7.rmeta: crates/bench/src/bin/transformed_code.rs Cargo.toml

crates/bench/src/bin/transformed_code.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
