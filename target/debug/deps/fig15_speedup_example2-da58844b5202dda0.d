/root/repo/target/debug/deps/fig15_speedup_example2-da58844b5202dda0.d: crates/bench/src/bin/fig15_speedup_example2.rs

/root/repo/target/debug/deps/fig15_speedup_example2-da58844b5202dda0: crates/bench/src/bin/fig15_speedup_example2.rs

crates/bench/src/bin/fig15_speedup_example2.rs:
