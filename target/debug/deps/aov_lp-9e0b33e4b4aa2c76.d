/root/repo/target/debug/deps/aov_lp-9e0b33e4b4aa2c76.d: crates/lp/src/lib.rs crates/lp/src/branch_bound.rs crates/lp/src/memo.rs crates/lp/src/model.rs crates/lp/src/simplex.rs

/root/repo/target/debug/deps/aov_lp-9e0b33e4b4aa2c76: crates/lp/src/lib.rs crates/lp/src/branch_bound.rs crates/lp/src/memo.rs crates/lp/src/model.rs crates/lp/src/simplex.rs

crates/lp/src/lib.rs:
crates/lp/src/branch_bound.rs:
crates/lp/src/memo.rs:
crates/lp/src/model.rs:
crates/lp/src/simplex.rs:
