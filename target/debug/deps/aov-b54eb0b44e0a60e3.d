/root/repo/target/debug/deps/aov-b54eb0b44e0a60e3.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libaov-b54eb0b44e0a60e3.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
