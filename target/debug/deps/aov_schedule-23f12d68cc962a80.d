/root/repo/target/debug/deps/aov_schedule-23f12d68cc962a80.d: crates/schedule/src/lib.rs crates/schedule/src/bilinear.rs crates/schedule/src/farkas.rs crates/schedule/src/legal.rs crates/schedule/src/linearize.rs crates/schedule/src/scheduler.rs crates/schedule/src/space.rs Cargo.toml

/root/repo/target/debug/deps/libaov_schedule-23f12d68cc962a80.rmeta: crates/schedule/src/lib.rs crates/schedule/src/bilinear.rs crates/schedule/src/farkas.rs crates/schedule/src/legal.rs crates/schedule/src/linearize.rs crates/schedule/src/scheduler.rs crates/schedule/src/space.rs Cargo.toml

crates/schedule/src/lib.rs:
crates/schedule/src/bilinear.rs:
crates/schedule/src/farkas.rs:
crates/schedule/src/legal.rs:
crates/schedule/src/linearize.rs:
crates/schedule/src/scheduler.rs:
crates/schedule/src/space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
