/root/repo/target/debug/deps/all_figures-42484482d75306d8.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/debug/deps/all_figures-42484482d75306d8: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
