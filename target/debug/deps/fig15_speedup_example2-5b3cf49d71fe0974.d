/root/repo/target/debug/deps/fig15_speedup_example2-5b3cf49d71fe0974.d: crates/bench/src/bin/fig15_speedup_example2.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_speedup_example2-5b3cf49d71fe0974.rmeta: crates/bench/src/bin/fig15_speedup_example2.rs Cargo.toml

crates/bench/src/bin/fig15_speedup_example2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
