/root/repo/target/debug/deps/aov_lp-61c325b617e7f9eb.d: crates/lp/src/lib.rs crates/lp/src/branch_bound.rs crates/lp/src/memo.rs crates/lp/src/model.rs crates/lp/src/simplex.rs

/root/repo/target/debug/deps/libaov_lp-61c325b617e7f9eb.rlib: crates/lp/src/lib.rs crates/lp/src/branch_bound.rs crates/lp/src/memo.rs crates/lp/src/model.rs crates/lp/src/simplex.rs

/root/repo/target/debug/deps/libaov_lp-61c325b617e7f9eb.rmeta: crates/lp/src/lib.rs crates/lp/src/branch_bound.rs crates/lp/src/memo.rs crates/lp/src/model.rs crates/lp/src/simplex.rs

crates/lp/src/lib.rs:
crates/lp/src/branch_bound.rs:
crates/lp/src/memo.rs:
crates/lp/src/model.rs:
crates/lp/src/simplex.rs:
