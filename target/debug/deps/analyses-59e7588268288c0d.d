/root/repo/target/debug/deps/analyses-59e7588268288c0d.d: crates/bench/benches/analyses.rs

/root/repo/target/debug/deps/analyses-59e7588268288c0d: crates/bench/benches/analyses.rs

crates/bench/benches/analyses.rs:
