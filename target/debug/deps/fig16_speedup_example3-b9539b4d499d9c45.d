/root/repo/target/debug/deps/fig16_speedup_example3-b9539b4d499d9c45.d: crates/bench/src/bin/fig16_speedup_example3.rs

/root/repo/target/debug/deps/fig16_speedup_example3-b9539b4d499d9c45: crates/bench/src/bin/fig16_speedup_example3.rs

crates/bench/src/bin/fig16_speedup_example3.rs:
