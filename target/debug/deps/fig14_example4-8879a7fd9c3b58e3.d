/root/repo/target/debug/deps/fig14_example4-8879a7fd9c3b58e3.d: crates/bench/src/bin/fig14_example4.rs

/root/repo/target/debug/deps/fig14_example4-8879a7fd9c3b58e3: crates/bench/src/bin/fig14_example4.rs

crates/bench/src/bin/fig14_example4.rs:
