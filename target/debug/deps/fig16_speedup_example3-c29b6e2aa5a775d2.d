/root/repo/target/debug/deps/fig16_speedup_example3-c29b6e2aa5a775d2.d: crates/bench/src/bin/fig16_speedup_example3.rs

/root/repo/target/debug/deps/fig16_speedup_example3-c29b6e2aa5a775d2: crates/bench/src/bin/fig16_speedup_example3.rs

crates/bench/src/bin/fig16_speedup_example3.rs:
