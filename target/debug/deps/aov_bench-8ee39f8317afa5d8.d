/root/repo/target/debug/deps/aov_bench-8ee39f8317afa5d8.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libaov_bench-8ee39f8317afa5d8.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
