/root/repo/target/debug/deps/aov_ir-f8ea8770d9a629d4.d: crates/ir/src/lib.rs crates/ir/src/analysis.rs crates/ir/src/expr.rs crates/ir/src/examples.rs crates/ir/src/program.rs

/root/repo/target/debug/deps/libaov_ir-f8ea8770d9a629d4.rlib: crates/ir/src/lib.rs crates/ir/src/analysis.rs crates/ir/src/expr.rs crates/ir/src/examples.rs crates/ir/src/program.rs

/root/repo/target/debug/deps/libaov_ir-f8ea8770d9a629d4.rmeta: crates/ir/src/lib.rs crates/ir/src/analysis.rs crates/ir/src/expr.rs crates/ir/src/examples.rs crates/ir/src/program.rs

crates/ir/src/lib.rs:
crates/ir/src/analysis.rs:
crates/ir/src/expr.rs:
crates/ir/src/examples.rs:
crates/ir/src/program.rs:
