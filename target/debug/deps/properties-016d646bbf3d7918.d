/root/repo/target/debug/deps/properties-016d646bbf3d7918.d: crates/interp/tests/properties.rs

/root/repo/target/debug/deps/properties-016d646bbf3d7918: crates/interp/tests/properties.rs

crates/interp/tests/properties.rs:
