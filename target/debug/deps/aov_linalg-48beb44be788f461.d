/root/repo/target/debug/deps/aov_linalg-48beb44be788f461.d: crates/linalg/src/lib.rs crates/linalg/src/affine.rs crates/linalg/src/lattice.rs crates/linalg/src/matrix.rs crates/linalg/src/vector.rs

/root/repo/target/debug/deps/libaov_linalg-48beb44be788f461.rlib: crates/linalg/src/lib.rs crates/linalg/src/affine.rs crates/linalg/src/lattice.rs crates/linalg/src/matrix.rs crates/linalg/src/vector.rs

/root/repo/target/debug/deps/libaov_linalg-48beb44be788f461.rmeta: crates/linalg/src/lib.rs crates/linalg/src/affine.rs crates/linalg/src/lattice.rs crates/linalg/src/matrix.rs crates/linalg/src/vector.rs

crates/linalg/src/lib.rs:
crates/linalg/src/affine.rs:
crates/linalg/src/lattice.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/vector.rs:
