/root/repo/target/debug/deps/fig04_schedule_range-164c703ce5f3c041.d: crates/bench/src/bin/fig04_schedule_range.rs

/root/repo/target/debug/deps/fig04_schedule_range-164c703ce5f3c041: crates/bench/src/bin/fig04_schedule_range.rs

crates/bench/src/bin/fig04_schedule_range.rs:
