/root/repo/target/debug/deps/aov_interp-da42584d41982208.d: crates/interp/src/lib.rs crates/interp/src/domain.rs crates/interp/src/exec.rs crates/interp/src/funcs.rs crates/interp/src/store.rs crates/interp/src/validate.rs

/root/repo/target/debug/deps/aov_interp-da42584d41982208: crates/interp/src/lib.rs crates/interp/src/domain.rs crates/interp/src/exec.rs crates/interp/src/funcs.rs crates/interp/src/store.rs crates/interp/src/validate.rs

crates/interp/src/lib.rs:
crates/interp/src/domain.rs:
crates/interp/src/exec.rs:
crates/interp/src/funcs.rs:
crates/interp/src/store.rs:
crates/interp/src/validate.rs:
