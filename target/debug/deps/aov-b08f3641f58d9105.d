/root/repo/target/debug/deps/aov-b08f3641f58d9105.d: src/lib.rs

/root/repo/target/debug/deps/libaov-b08f3641f58d9105.rlib: src/lib.rs

/root/repo/target/debug/deps/libaov-b08f3641f58d9105.rmeta: src/lib.rs

src/lib.rs:
