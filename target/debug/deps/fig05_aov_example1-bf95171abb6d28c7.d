/root/repo/target/debug/deps/fig05_aov_example1-bf95171abb6d28c7.d: crates/bench/src/bin/fig05_aov_example1.rs

/root/repo/target/debug/deps/fig05_aov_example1-bf95171abb6d28c7: crates/bench/src/bin/fig05_aov_example1.rs

crates/bench/src/bin/fig05_aov_example1.rs:
