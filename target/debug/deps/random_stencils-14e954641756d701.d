/root/repo/target/debug/deps/random_stencils-14e954641756d701.d: tests/random_stencils.rs

/root/repo/target/debug/deps/random_stencils-14e954641756d701: tests/random_stencils.rs

tests/random_stencils.rs:
