/root/repo/target/debug/deps/fig15_speedup_example2-6286ba56f3dfbd1e.d: crates/bench/src/bin/fig15_speedup_example2.rs

/root/repo/target/debug/deps/fig15_speedup_example2-6286ba56f3dfbd1e: crates/bench/src/bin/fig15_speedup_example2.rs

crates/bench/src/bin/fig15_speedup_example2.rs:
