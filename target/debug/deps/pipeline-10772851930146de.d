/root/repo/target/debug/deps/pipeline-10772851930146de.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-10772851930146de: tests/pipeline.rs

tests/pipeline.rs:
