/root/repo/target/debug/deps/aov_machine-a48f5ce19d2c186a.d: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/experiments.rs crates/machine/src/layout.rs crates/machine/src/parallel.rs

/root/repo/target/debug/deps/libaov_machine-a48f5ce19d2c186a.rlib: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/experiments.rs crates/machine/src/layout.rs crates/machine/src/parallel.rs

/root/repo/target/debug/deps/libaov_machine-a48f5ce19d2c186a.rmeta: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/experiments.rs crates/machine/src/layout.rs crates/machine/src/parallel.rs

crates/machine/src/lib.rs:
crates/machine/src/cache.rs:
crates/machine/src/experiments.rs:
crates/machine/src/layout.rs:
crates/machine/src/parallel.rs:
