/root/repo/target/debug/deps/fig14_example4-bcd005bfa1d031b0.d: crates/bench/src/bin/fig14_example4.rs

/root/repo/target/debug/deps/fig14_example4-bcd005bfa1d031b0: crates/bench/src/bin/fig14_example4.rs

crates/bench/src/bin/fig14_example4.rs:
