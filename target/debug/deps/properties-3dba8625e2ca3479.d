/root/repo/target/debug/deps/properties-3dba8625e2ca3479.d: crates/polyhedra/tests/properties.rs

/root/repo/target/debug/deps/properties-3dba8625e2ca3479: crates/polyhedra/tests/properties.rs

crates/polyhedra/tests/properties.rs:
