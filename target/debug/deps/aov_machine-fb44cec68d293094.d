/root/repo/target/debug/deps/aov_machine-fb44cec68d293094.d: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/experiments.rs crates/machine/src/layout.rs crates/machine/src/parallel.rs

/root/repo/target/debug/deps/aov_machine-fb44cec68d293094: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/experiments.rs crates/machine/src/layout.rs crates/machine/src/parallel.rs

crates/machine/src/lib.rs:
crates/machine/src/cache.rs:
crates/machine/src/experiments.rs:
crates/machine/src/layout.rs:
crates/machine/src/parallel.rs:
