/root/repo/target/debug/deps/properties-d888b2be8f5d4591.d: crates/interp/tests/properties.rs

/root/repo/target/debug/deps/properties-d888b2be8f5d4591: crates/interp/tests/properties.rs

crates/interp/tests/properties.rs:
