/root/repo/target/debug/deps/random_stencils-4dda40c5cf6eb1ee.d: tests/random_stencils.rs Cargo.toml

/root/repo/target/debug/deps/librandom_stencils-4dda40c5cf6eb1ee.rmeta: tests/random_stencils.rs Cargo.toml

tests/random_stencils.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
