/root/repo/target/debug/deps/aov_engine-52fb8d48e9807066.d: crates/engine/src/lib.rs crates/engine/src/pipeline.rs

/root/repo/target/debug/deps/libaov_engine-52fb8d48e9807066.rlib: crates/engine/src/lib.rs crates/engine/src/pipeline.rs

/root/repo/target/debug/deps/libaov_engine-52fb8d48e9807066.rmeta: crates/engine/src/lib.rs crates/engine/src/pipeline.rs

crates/engine/src/lib.rs:
crates/engine/src/pipeline.rs:
