/root/repo/target/debug/deps/all_figures-188b29a3f0f78b41.d: crates/bench/src/bin/all_figures.rs Cargo.toml

/root/repo/target/debug/deps/liball_figures-188b29a3f0f78b41.rmeta: crates/bench/src/bin/all_figures.rs Cargo.toml

crates/bench/src/bin/all_figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
