/root/repo/target/debug/deps/fig15_speedup_example2-3128f105097ef1a8.d: crates/bench/src/bin/fig15_speedup_example2.rs

/root/repo/target/debug/deps/fig15_speedup_example2-3128f105097ef1a8: crates/bench/src/bin/fig15_speedup_example2.rs

crates/bench/src/bin/fig15_speedup_example2.rs:
