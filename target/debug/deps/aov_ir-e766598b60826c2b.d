/root/repo/target/debug/deps/aov_ir-e766598b60826c2b.d: crates/ir/src/lib.rs crates/ir/src/analysis.rs crates/ir/src/examples.rs crates/ir/src/expr.rs crates/ir/src/program.rs Cargo.toml

/root/repo/target/debug/deps/libaov_ir-e766598b60826c2b.rmeta: crates/ir/src/lib.rs crates/ir/src/analysis.rs crates/ir/src/examples.rs crates/ir/src/expr.rs crates/ir/src/program.rs Cargo.toml

crates/ir/src/lib.rs:
crates/ir/src/analysis.rs:
crates/ir/src/examples.rs:
crates/ir/src/expr.rs:
crates/ir/src/program.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
