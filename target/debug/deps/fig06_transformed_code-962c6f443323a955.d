/root/repo/target/debug/deps/fig06_transformed_code-962c6f443323a955.d: crates/bench/src/bin/fig06_transformed_code.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_transformed_code-962c6f443323a955.rmeta: crates/bench/src/bin/fig06_transformed_code.rs Cargo.toml

crates/bench/src/bin/fig06_transformed_code.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
