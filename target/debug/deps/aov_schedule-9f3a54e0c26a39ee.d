/root/repo/target/debug/deps/aov_schedule-9f3a54e0c26a39ee.d: crates/schedule/src/lib.rs crates/schedule/src/bilinear.rs crates/schedule/src/farkas.rs crates/schedule/src/legal.rs crates/schedule/src/linearize.rs crates/schedule/src/scheduler.rs crates/schedule/src/space.rs

/root/repo/target/debug/deps/aov_schedule-9f3a54e0c26a39ee: crates/schedule/src/lib.rs crates/schedule/src/bilinear.rs crates/schedule/src/farkas.rs crates/schedule/src/legal.rs crates/schedule/src/linearize.rs crates/schedule/src/scheduler.rs crates/schedule/src/space.rs

crates/schedule/src/lib.rs:
crates/schedule/src/bilinear.rs:
crates/schedule/src/farkas.rs:
crates/schedule/src/legal.rs:
crates/schedule/src/linearize.rs:
crates/schedule/src/scheduler.rs:
crates/schedule/src/space.rs:
