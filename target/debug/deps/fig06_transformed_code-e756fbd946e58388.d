/root/repo/target/debug/deps/fig06_transformed_code-e756fbd946e58388.d: crates/bench/src/bin/fig06_transformed_code.rs

/root/repo/target/debug/deps/fig06_transformed_code-e756fbd946e58388: crates/bench/src/bin/fig06_transformed_code.rs

crates/bench/src/bin/fig06_transformed_code.rs:
