/root/repo/target/debug/deps/aov_numeric-a15daa7c08eeb694.d: crates/numeric/src/lib.rs crates/numeric/src/bigint.rs crates/numeric/src/gcd.rs crates/numeric/src/rational.rs

/root/repo/target/debug/deps/aov_numeric-a15daa7c08eeb694: crates/numeric/src/lib.rs crates/numeric/src/bigint.rs crates/numeric/src/gcd.rs crates/numeric/src/rational.rs

crates/numeric/src/lib.rs:
crates/numeric/src/bigint.rs:
crates/numeric/src/gcd.rs:
crates/numeric/src/rational.rs:
