/root/repo/target/debug/deps/transformed_code-ccf8daf14b4d32fd.d: crates/bench/src/bin/transformed_code.rs

/root/repo/target/debug/deps/transformed_code-ccf8daf14b4d32fd: crates/bench/src/bin/transformed_code.rs

crates/bench/src/bin/transformed_code.rs:
