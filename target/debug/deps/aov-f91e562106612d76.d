/root/repo/target/debug/deps/aov-f91e562106612d76.d: crates/engine/src/bin/aov.rs Cargo.toml

/root/repo/target/debug/deps/libaov-f91e562106612d76.rmeta: crates/engine/src/bin/aov.rs Cargo.toml

crates/engine/src/bin/aov.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
