/root/repo/target/debug/deps/fig03_ov_given_schedule-a7fc55df0841b21e.d: crates/bench/src/bin/fig03_ov_given_schedule.rs

/root/repo/target/debug/deps/fig03_ov_given_schedule-a7fc55df0841b21e: crates/bench/src/bin/fig03_ov_given_schedule.rs

crates/bench/src/bin/fig03_ov_given_schedule.rs:
