/root/repo/target/debug/deps/aov_numeric-3440b315e3ce719d.d: crates/numeric/src/lib.rs crates/numeric/src/bigint.rs crates/numeric/src/gcd.rs crates/numeric/src/rational.rs

/root/repo/target/debug/deps/libaov_numeric-3440b315e3ce719d.rlib: crates/numeric/src/lib.rs crates/numeric/src/bigint.rs crates/numeric/src/gcd.rs crates/numeric/src/rational.rs

/root/repo/target/debug/deps/libaov_numeric-3440b315e3ce719d.rmeta: crates/numeric/src/lib.rs crates/numeric/src/bigint.rs crates/numeric/src/gcd.rs crates/numeric/src/rational.rs

crates/numeric/src/lib.rs:
crates/numeric/src/bigint.rs:
crates/numeric/src/gcd.rs:
crates/numeric/src/rational.rs:
