/root/repo/target/debug/deps/aov_core-6fcd796c861db083.d: crates/core/src/lib.rs crates/core/src/check.rs crates/core/src/codegen.rs crates/core/src/multi_ov.rs crates/core/src/objective.rs crates/core/src/ov.rs crates/core/src/problems.rs crates/core/src/storage.rs crates/core/src/tiling.rs crates/core/src/transform.rs crates/core/src/uov.rs

/root/repo/target/debug/deps/aov_core-6fcd796c861db083: crates/core/src/lib.rs crates/core/src/check.rs crates/core/src/codegen.rs crates/core/src/multi_ov.rs crates/core/src/objective.rs crates/core/src/ov.rs crates/core/src/problems.rs crates/core/src/storage.rs crates/core/src/tiling.rs crates/core/src/transform.rs crates/core/src/uov.rs

crates/core/src/lib.rs:
crates/core/src/check.rs:
crates/core/src/codegen.rs:
crates/core/src/multi_ov.rs:
crates/core/src/objective.rs:
crates/core/src/ov.rs:
crates/core/src/problems.rs:
crates/core/src/storage.rs:
crates/core/src/tiling.rs:
crates/core/src/transform.rs:
crates/core/src/uov.rs:
