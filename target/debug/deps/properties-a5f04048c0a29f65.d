/root/repo/target/debug/deps/properties-a5f04048c0a29f65.d: crates/lp/tests/properties.rs

/root/repo/target/debug/deps/properties-a5f04048c0a29f65: crates/lp/tests/properties.rs

crates/lp/tests/properties.rs:
