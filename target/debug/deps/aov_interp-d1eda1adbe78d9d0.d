/root/repo/target/debug/deps/aov_interp-d1eda1adbe78d9d0.d: crates/interp/src/lib.rs crates/interp/src/domain.rs crates/interp/src/exec.rs crates/interp/src/funcs.rs crates/interp/src/store.rs crates/interp/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libaov_interp-d1eda1adbe78d9d0.rmeta: crates/interp/src/lib.rs crates/interp/src/domain.rs crates/interp/src/exec.rs crates/interp/src/funcs.rs crates/interp/src/store.rs crates/interp/src/validate.rs Cargo.toml

crates/interp/src/lib.rs:
crates/interp/src/domain.rs:
crates/interp/src/exec.rs:
crates/interp/src/funcs.rs:
crates/interp/src/store.rs:
crates/interp/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
