/root/repo/target/debug/deps/aov_engine-010586b2c826db87.d: crates/engine/src/lib.rs crates/engine/src/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libaov_engine-010586b2c826db87.rmeta: crates/engine/src/lib.rs crates/engine/src/pipeline.rs Cargo.toml

crates/engine/src/lib.rs:
crates/engine/src/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
