/root/repo/target/debug/deps/fig09_example2-2edf1ef22582f3b5.d: crates/bench/src/bin/fig09_example2.rs

/root/repo/target/debug/deps/fig09_example2-2edf1ef22582f3b5: crates/bench/src/bin/fig09_example2.rs

crates/bench/src/bin/fig09_example2.rs:
