/root/repo/target/debug/deps/properties-be9f6d06d19b579a.d: crates/polyhedra/tests/properties.rs

/root/repo/target/debug/deps/properties-be9f6d06d19b579a: crates/polyhedra/tests/properties.rs

crates/polyhedra/tests/properties.rs:
