/root/repo/target/debug/deps/aov_engine-74eda89e056ade94.d: crates/engine/src/lib.rs crates/engine/src/pipeline.rs

/root/repo/target/debug/deps/aov_engine-74eda89e056ade94: crates/engine/src/lib.rs crates/engine/src/pipeline.rs

crates/engine/src/lib.rs:
crates/engine/src/pipeline.rs:
