/root/repo/target/debug/deps/aov-684aef7517c45a2c.d: crates/engine/src/bin/aov.rs

/root/repo/target/debug/deps/aov-684aef7517c45a2c: crates/engine/src/bin/aov.rs

crates/engine/src/bin/aov.rs:
