/root/repo/target/debug/deps/uov_vs_aov-bee3310dd7688586.d: crates/bench/src/bin/uov_vs_aov.rs Cargo.toml

/root/repo/target/debug/deps/libuov_vs_aov-bee3310dd7688586.rmeta: crates/bench/src/bin/uov_vs_aov.rs Cargo.toml

crates/bench/src/bin/uov_vs_aov.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
