/root/repo/target/debug/deps/aov_support-814d84f2eb645d3c.d: crates/support/src/lib.rs crates/support/src/bench.rs crates/support/src/counters.rs crates/support/src/json.rs crates/support/src/prop.rs crates/support/src/rng.rs Cargo.toml

/root/repo/target/debug/deps/libaov_support-814d84f2eb645d3c.rmeta: crates/support/src/lib.rs crates/support/src/bench.rs crates/support/src/counters.rs crates/support/src/json.rs crates/support/src/prop.rs crates/support/src/rng.rs Cargo.toml

crates/support/src/lib.rs:
crates/support/src/bench.rs:
crates/support/src/counters.rs:
crates/support/src/json.rs:
crates/support/src/prop.rs:
crates/support/src/rng.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
