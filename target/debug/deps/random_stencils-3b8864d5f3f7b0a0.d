/root/repo/target/debug/deps/random_stencils-3b8864d5f3f7b0a0.d: tests/random_stencils.rs

/root/repo/target/debug/deps/random_stencils-3b8864d5f3f7b0a0: tests/random_stencils.rs

tests/random_stencils.rs:
