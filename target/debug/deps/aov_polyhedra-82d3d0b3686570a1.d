/root/repo/target/debug/deps/aov_polyhedra-82d3d0b3686570a1.d: crates/polyhedra/src/lib.rs crates/polyhedra/src/constraint.rs crates/polyhedra/src/dd.rs crates/polyhedra/src/fm.rs crates/polyhedra/src/param.rs crates/polyhedra/src/polyhedron.rs

/root/repo/target/debug/deps/aov_polyhedra-82d3d0b3686570a1: crates/polyhedra/src/lib.rs crates/polyhedra/src/constraint.rs crates/polyhedra/src/dd.rs crates/polyhedra/src/fm.rs crates/polyhedra/src/param.rs crates/polyhedra/src/polyhedron.rs

crates/polyhedra/src/lib.rs:
crates/polyhedra/src/constraint.rs:
crates/polyhedra/src/dd.rs:
crates/polyhedra/src/fm.rs:
crates/polyhedra/src/param.rs:
crates/polyhedra/src/polyhedron.rs:
