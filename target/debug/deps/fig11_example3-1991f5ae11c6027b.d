/root/repo/target/debug/deps/fig11_example3-1991f5ae11c6027b.d: crates/bench/src/bin/fig11_example3.rs

/root/repo/target/debug/deps/fig11_example3-1991f5ae11c6027b: crates/bench/src/bin/fig11_example3.rs

crates/bench/src/bin/fig11_example3.rs:
