/root/repo/target/debug/deps/properties-b229169fcd49809a.d: crates/lp/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-b229169fcd49809a.rmeta: crates/lp/tests/properties.rs Cargo.toml

crates/lp/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
