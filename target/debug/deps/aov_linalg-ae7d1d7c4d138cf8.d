/root/repo/target/debug/deps/aov_linalg-ae7d1d7c4d138cf8.d: crates/linalg/src/lib.rs crates/linalg/src/affine.rs crates/linalg/src/lattice.rs crates/linalg/src/matrix.rs crates/linalg/src/vector.rs Cargo.toml

/root/repo/target/debug/deps/libaov_linalg-ae7d1d7c4d138cf8.rmeta: crates/linalg/src/lib.rs crates/linalg/src/affine.rs crates/linalg/src/lattice.rs crates/linalg/src/matrix.rs crates/linalg/src/vector.rs Cargo.toml

crates/linalg/src/lib.rs:
crates/linalg/src/affine.rs:
crates/linalg/src/lattice.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/vector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
