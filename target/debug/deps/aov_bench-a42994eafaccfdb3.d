/root/repo/target/debug/deps/aov_bench-a42994eafaccfdb3.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libaov_bench-a42994eafaccfdb3.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libaov_bench-a42994eafaccfdb3.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
