/root/repo/target/debug/deps/machine-55fcba9551c69583.d: crates/bench/benches/machine.rs

/root/repo/target/debug/deps/machine-55fcba9551c69583: crates/bench/benches/machine.rs

crates/bench/benches/machine.rs:
