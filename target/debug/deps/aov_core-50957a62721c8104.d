/root/repo/target/debug/deps/aov_core-50957a62721c8104.d: crates/core/src/lib.rs crates/core/src/check.rs crates/core/src/codegen.rs crates/core/src/objective.rs crates/core/src/ov.rs crates/core/src/multi_ov.rs crates/core/src/problems.rs crates/core/src/storage.rs crates/core/src/tiling.rs crates/core/src/transform.rs crates/core/src/uov.rs

/root/repo/target/debug/deps/libaov_core-50957a62721c8104.rlib: crates/core/src/lib.rs crates/core/src/check.rs crates/core/src/codegen.rs crates/core/src/objective.rs crates/core/src/ov.rs crates/core/src/multi_ov.rs crates/core/src/problems.rs crates/core/src/storage.rs crates/core/src/tiling.rs crates/core/src/transform.rs crates/core/src/uov.rs

/root/repo/target/debug/deps/libaov_core-50957a62721c8104.rmeta: crates/core/src/lib.rs crates/core/src/check.rs crates/core/src/codegen.rs crates/core/src/objective.rs crates/core/src/ov.rs crates/core/src/multi_ov.rs crates/core/src/problems.rs crates/core/src/storage.rs crates/core/src/tiling.rs crates/core/src/transform.rs crates/core/src/uov.rs

crates/core/src/lib.rs:
crates/core/src/check.rs:
crates/core/src/codegen.rs:
crates/core/src/objective.rs:
crates/core/src/ov.rs:
crates/core/src/multi_ov.rs:
crates/core/src/problems.rs:
crates/core/src/storage.rs:
crates/core/src/tiling.rs:
crates/core/src/transform.rs:
crates/core/src/uov.rs:
