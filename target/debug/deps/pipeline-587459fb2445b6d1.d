/root/repo/target/debug/deps/pipeline-587459fb2445b6d1.d: tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-587459fb2445b6d1.rmeta: tests/pipeline.rs Cargo.toml

tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
