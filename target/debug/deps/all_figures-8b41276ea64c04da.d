/root/repo/target/debug/deps/all_figures-8b41276ea64c04da.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/debug/deps/all_figures-8b41276ea64c04da: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
