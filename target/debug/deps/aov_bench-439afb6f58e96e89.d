/root/repo/target/debug/deps/aov_bench-439afb6f58e96e89.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libaov_bench-439afb6f58e96e89.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
