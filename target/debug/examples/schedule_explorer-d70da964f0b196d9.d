/root/repo/target/debug/examples/schedule_explorer-d70da964f0b196d9.d: examples/schedule_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libschedule_explorer-d70da964f0b196d9.rmeta: examples/schedule_explorer.rs Cargo.toml

examples/schedule_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
