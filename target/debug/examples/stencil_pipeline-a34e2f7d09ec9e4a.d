/root/repo/target/debug/examples/stencil_pipeline-a34e2f7d09ec9e4a.d: examples/stencil_pipeline.rs

/root/repo/target/debug/examples/stencil_pipeline-a34e2f7d09ec9e4a: examples/stencil_pipeline.rs

examples/stencil_pipeline.rs:
