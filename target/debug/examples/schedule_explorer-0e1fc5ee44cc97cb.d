/root/repo/target/debug/examples/schedule_explorer-0e1fc5ee44cc97cb.d: examples/schedule_explorer.rs

/root/repo/target/debug/examples/schedule_explorer-0e1fc5ee44cc97cb: examples/schedule_explorer.rs

examples/schedule_explorer.rs:
