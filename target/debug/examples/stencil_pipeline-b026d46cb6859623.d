/root/repo/target/debug/examples/stencil_pipeline-b026d46cb6859623.d: examples/stencil_pipeline.rs

/root/repo/target/debug/examples/stencil_pipeline-b026d46cb6859623: examples/stencil_pipeline.rs

examples/stencil_pipeline.rs:
