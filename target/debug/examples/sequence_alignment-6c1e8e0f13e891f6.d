/root/repo/target/debug/examples/sequence_alignment-6c1e8e0f13e891f6.d: examples/sequence_alignment.rs

/root/repo/target/debug/examples/sequence_alignment-6c1e8e0f13e891f6: examples/sequence_alignment.rs

examples/sequence_alignment.rs:
