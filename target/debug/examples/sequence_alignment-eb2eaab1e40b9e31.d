/root/repo/target/debug/examples/sequence_alignment-eb2eaab1e40b9e31.d: examples/sequence_alignment.rs Cargo.toml

/root/repo/target/debug/examples/libsequence_alignment-eb2eaab1e40b9e31.rmeta: examples/sequence_alignment.rs Cargo.toml

examples/sequence_alignment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
