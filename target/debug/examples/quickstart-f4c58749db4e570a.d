/root/repo/target/debug/examples/quickstart-f4c58749db4e570a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f4c58749db4e570a: examples/quickstart.rs

examples/quickstart.rs:
