/root/repo/target/debug/examples/stencil_pipeline-d0b7ea2924814495.d: examples/stencil_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libstencil_pipeline-d0b7ea2924814495.rmeta: examples/stencil_pipeline.rs Cargo.toml

examples/stencil_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
