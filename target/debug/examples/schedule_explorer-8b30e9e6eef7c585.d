/root/repo/target/debug/examples/schedule_explorer-8b30e9e6eef7c585.d: examples/schedule_explorer.rs

/root/repo/target/debug/examples/schedule_explorer-8b30e9e6eef7c585: examples/schedule_explorer.rs

examples/schedule_explorer.rs:
