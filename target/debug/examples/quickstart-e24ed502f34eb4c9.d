/root/repo/target/debug/examples/quickstart-e24ed502f34eb4c9.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-e24ed502f34eb4c9.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
