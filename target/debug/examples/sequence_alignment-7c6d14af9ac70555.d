/root/repo/target/debug/examples/sequence_alignment-7c6d14af9ac70555.d: examples/sequence_alignment.rs

/root/repo/target/debug/examples/sequence_alignment-7c6d14af9ac70555: examples/sequence_alignment.rs

examples/sequence_alignment.rs:
