/root/repo/target/debug/examples/quickstart-002625e2850a1ec1.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-002625e2850a1ec1: examples/quickstart.rs

examples/quickstart.rs:
