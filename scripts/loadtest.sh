#!/usr/bin/env bash
# Load-test the service layer: `aov bench --serve-clients N` spins up
# an in-process aovd over loopback TCP and hammers it with N concurrent
# clients over the example corpus. The campaign's latencies, shed-load
# (overloaded) retries and cross-request memo hit rate land in the
# aov-bench/2 artifact's `serve` block — informational and
# gate-neutral: no regression comparison reads it.
#
# Usage: scripts/loadtest.sh [clients] [out-file]
set -euo pipefail
cd "$(dirname "$0")/.."

clients="${1:-8}"
out="${2:-/tmp/aov-loadtest.json}"

cargo build --release --offline --workspace

./target/release/aov bench --examples example1 --runs 1 --quick \
    --no-figures --serve-clients "$clients" --out "$out" > /dev/null
./target/release/aov bench --check "$out"

# Surface the recorded campaign summary, histogram quantiles included
# (the serve block's latency_us carries count/p50/p90/p99/max — the
# tail, not just min/median/max).
sed -n '/"serve": {/,/^  }/p' "$out"
echo "latency quantiles (µs):"
sed -n '/"latency_us": {/,/}/p' "$out"
echo "Artifact with serve load-test summary written to $out"
