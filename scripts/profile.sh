#!/usr/bin/env bash
# Profile one example through the full pipeline, with the LP memo cache
# on and the per-orthant solvers fanned out.
#
# Writes a Chrome trace-event file and prints the per-span flame table
# plus the memo hit rate to stderr. Load the trace in
# https://ui.perfetto.dev or chrome://tracing — one track per worker
# thread, pipeline stages as root spans.
#
# Usage: scripts/profile.sh <example1|example2|example3|example4> [trace-file] [workers]
set -euo pipefail
cd "$(dirname "$0")/.."

example="${1:?usage: scripts/profile.sh <example1..example4> [trace-file] [workers]}"
trace_file="${2:-/tmp/aov-${example}-trace.json}"
workers="${3:-8}"

cargo build --release --offline --workspace

./target/release/aov "$example" --memoize --workers "$workers" \
    --profile --trace "$trace_file" --compact > /dev/null

./target/release/aov --check-trace "$trace_file"
echo "Load $trace_file in https://ui.perfetto.dev to explore the run."
