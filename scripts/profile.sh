#!/usr/bin/env bash
# Profile one example through the full pipeline, with the LP memo cache
# on and the per-orthant solvers fanned out.
#
# Writes a Chrome trace-event file and prints the per-span flame table
# plus the memo hit rate to stderr. Load the trace in
# https://ui.perfetto.dev or chrome://tracing — one track per worker
# thread, pipeline stages as root spans.
#
# With --mem (anywhere in the arguments), the profile also prints the
# memory flame table: allocations, bytes, peak live bytes and the max
# coefficient bit-width attributed to each span.
#
# Usage: scripts/profile.sh <example1|example2|example3|example4> [trace-file] [workers] [--mem]
set -euo pipefail
cd "$(dirname "$0")/.."

mem_flag=""
args=()
for arg in "$@"; do
    if [ "$arg" = "--mem" ]; then
        mem_flag="--mem"
    else
        args+=("$arg")
    fi
done
set -- "${args[@]:-}"

example="${1:?usage: scripts/profile.sh <example1..example4> [trace-file] [workers] [--mem]}"
trace_file="${2:-/tmp/aov-${example}-trace.json}"
workers="${3:-8}"

cargo build --release --offline --workspace

# shellcheck disable=SC2086 # $mem_flag is deliberately unquoted-empty
./target/release/aov "$example" --memoize --workers "$workers" \
    --profile $mem_flag --trace "$trace_file" --compact > /dev/null

./target/release/aov --check-trace "$trace_file"
echo "Load $trace_file in https://ui.perfetto.dev to explore the run."
