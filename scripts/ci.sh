#!/usr/bin/env bash
# Hermetic CI gate: format, lint, build, test — all offline.
#
# The workspace has zero external dependencies by design (see
# crates/support), so every step runs with --offline and must succeed
# with no registry access at all.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo build --release --offline"
cargo build --release --offline --workspace

echo "== cargo test -q --offline"
cargo test -q --offline --workspace

echo "== trace smoke"
trace_file="$(mktemp /tmp/aov-trace-smoke.XXXXXX.json)"
bench_file="$(mktemp /tmp/aov-bench-smoke.XXXXXX.json)"
chaos_file="$(mktemp /tmp/aov-chaos-smoke.XXXXXX.json)"
trap 'rm -f "$trace_file" "$bench_file" "$chaos_file"' EXIT
./target/release/aov example1 --memoize --trace "$trace_file" --profile \
    --compact > /dev/null
./target/release/aov --check-trace "$trace_file"

echo "== bench smoke"
# Tiny observatory run: one example, two repetitions, reduced machine
# sweeps. Produces an artifact, validates it against the schema, and
# exercises the comparator in no-baseline mode (nothing to gate on).
./target/release/aov bench --examples example1 --runs 2 --quick \
    --out "$bench_file"
./target/release/aov bench --check "$bench_file"

echo "== trend smoke"
# Two quick single-example artifacts from the same binary must trend
# cleanly: `aov trend` exits 0, and the emitted aov-trend/1 document
# validates and renders through `aov inspect`. A second recording of
# identical code drifting or stepping would mean the classifier (or
# the calibration normalization) is broken.
bench_file2="$(mktemp /tmp/aov-bench-smoke2.XXXXXX.json)"
trend_file="$(mktemp /tmp/aov-trend-smoke.XXXXXX.json)"
trap 'rm -f "$trace_file" "$bench_file" "$bench_file2" "$trend_file" "$chaos_file"' EXIT
./target/release/aov bench --examples example1 --runs 2 --quick \
    --no-figures --out "$bench_file2" > /dev/null 2> /dev/null
./target/release/aov trend "$bench_file" "$bench_file2" --out "$trend_file"
if grep -q '"kind": "step"\|"kind": "drift"' "$trend_file"; then
    echo "trend smoke: self-trend of identical code is not clean"
    exit 1
fi
./target/release/aov inspect "$trend_file" --check
./target/release/aov inspect "$trend_file" > /dev/null

echo "== chaos smoke"
# One injected fault per pipeline stage (plus a worker panic and a
# forced budget trip in the solver layers): every run must degrade —
# exit code 3, never an abort — and still emit a schema-valid report.
chaos_specs=(
    "site=pipeline.ir,kind=error,nth=0"
    "site=pipeline.dependences,kind=error,nth=0"
    "site=pipeline.legal_schedule,kind=error,nth=0"
    "site=pipeline.schedule,kind=error,nth=0"
    "site=pipeline.problem1,kind=error,nth=0"
    "site=pipeline.aov,kind=error,nth=0"
    "site=pipeline.problem2,kind=error,nth=0"
    "site=pipeline.storage_transform,kind=error,nth=0"
    "site=pipeline.codegen,kind=error,nth=0"
    "site=pipeline.equivalence,kind=error,nth=0"
    "site=aov.orthant,kind=panic,nth=0"
    "site=lp.ilp.node,kind=budget,nth=0"
)
for spec in "${chaos_specs[@]}"; do
    status=0
    AOV_CHAOS="$spec" ./target/release/aov example1 --workers 2 \
        > "$chaos_file" 2> /dev/null || status=$?
    if [ "$status" -ne 3 ]; then
        echo "chaos smoke: $spec: expected exit 3 (degraded), got $status"
        exit 1
    fi
    ./target/release/aov --check-report "$chaos_file"
done
# With injection disabled the same invocation is healthy.
status=0
./target/release/aov example1 --workers 2 > "$chaos_file" || status=$?
if [ "$status" -ne 0 ]; then
    echo "chaos smoke: fault-free run: expected exit 0, got $status"
    exit 1
fi
./target/release/aov --check-report "$chaos_file"

echo "== parse round-trip"
# Every corpus file must parse, print, and reparse to a fixed point
# (aov run --check), and a malformed file must produce a caret
# diagnostic with usage exit code 64, not a crash.
./target/release/aov run --check examples/*.aov
bad_file="$(mktemp /tmp/aov-bad-smoke.XXXXXX.aov)"
trap 'rm -f "$trace_file" "$bench_file" "$chaos_file" "$bad_file"' EXIT
printf 'program broken;\nstmt S(i) {\n  1 <= i <= ;\n}\n' > "$bad_file"
status=0
./target/release/aov run "$bad_file" > /dev/null 2> /dev/null || status=$?
if [ "$status" -ne 64 ]; then
    echo "parse round-trip: malformed file: expected exit 64, got $status"
    exit 1
fi

echo "== profile smoke"
# One profiled run must produce a schema-valid aov-profile/1 artifact
# (aov inspect --check picks the schema from the tag), render without
# error, and diff cleanly against itself: a self-comparison with zero
# regressions is the comparator's ground-truth invariant.
profile_file="$(mktemp /tmp/aov-profile-smoke.XXXXXX.json)"
trap 'rm -f "$trace_file" "$bench_file" "$chaos_file" "$bad_file" "$profile_file"' EXIT
./target/release/aov example1 --memoize --profile-out "$profile_file" \
    > /dev/null 2> /dev/null
./target/release/aov inspect "$profile_file" --check
./target/release/aov inspect "$profile_file" > /dev/null
./target/release/aov pdiff "$profile_file" "$profile_file" > /dev/null

echo "== fuzz smoke"
# A quick differential campaign must complete cleanly: exit 0 means
# every case is ok or legitimately degraded — zero oracle mismatches,
# zero panics, zero schema-invalid reports.
repro_dir="$(mktemp -d /tmp/aov-fuzz-smoke.XXXXXX)"
trap 'rm -f "$trace_file" "$bench_file" "$chaos_file" "$bad_file" "$profile_file"; rm -rf "$repro_dir"' EXIT
./target/release/aov fuzz --seed 1 --count 25 --quick \
    --repro-dir "$repro_dir" --compact > /dev/null

echo "== diag smoke"
# One injected fault with --diag-dir armed must produce exactly one
# crash-diagnostic bundle that validates against the aov-diag/1 schema
# (aov inspect --check) and renders without error.
diag_dir="$(mktemp -d /tmp/aov-diag-smoke.XXXXXX)"
trap 'rm -f "$trace_file" "$bench_file" "$chaos_file" "$bad_file" "$profile_file"; rm -rf "$repro_dir" "$diag_dir"' EXIT
status=0
AOV_CHAOS="site=lp.simplex,kind=panic,nth=2" \
    ./target/release/aov example1 --workers 2 --diag-dir "$diag_dir" \
    > /dev/null 2> /dev/null || status=$?
if [ "$status" -ne 3 ]; then
    echo "diag smoke: expected exit 3 (degraded), got $status"
    exit 1
fi
bundles=("$diag_dir"/aov-diag-*.json)
if [ "${#bundles[@]}" -ne 1 ] || [ ! -f "${bundles[0]}" ]; then
    echo "diag smoke: expected exactly one bundle in $diag_dir, found: ${bundles[*]}"
    exit 1
fi
./target/release/aov inspect "${bundles[0]}" --check
./target/release/aov inspect "${bundles[0]}" > /dev/null

echo "== profile wrapper guard"
# scripts/profile_example3.sh must stay a pure exec wrapper around
# scripts/profile.sh, and both must advertise the same optional flags:
# anything else is the flag drift between the two entry points
# reappearing.
if ! grep -q 'exec "$(dirname "$0")/profile.sh" example3 "$@"' scripts/profile_example3.sh; then
    echo "profile wrapper guard: profile_example3.sh no longer delegates to profile.sh"
    exit 1
fi
if grep -qE '^[[:space:]]*(cargo|\./target)' scripts/profile_example3.sh; then
    echo "profile wrapper guard: the wrapper must not build or invoke the binary itself"
    exit 1
fi
for f in scripts/profile.sh scripts/profile_example3.sh; do
    if ! grep -q -- '\[trace-file\] \[workers\] \[--mem\]' "$f"; then
        echo "profile wrapper guard: $f usage drifted from '[trace-file] [workers] [--mem]'"
        exit 1
    fi
done

echo "== serve smoke"
# aovd on a random port serves three concurrent clients — a healthy
# solve (exit 0), a budget-tripped solve (degraded, exit 3), and a
# chaos-injected service panic (structured error frame, exit 2) — then
# answers a health probe and drains cleanly on SIGTERM. The daemon runs
# --no-memo so the budget trip stays deterministic (a warm shared tier
# would satisfy the solve without spending pivots).
serve_diag="$(mktemp -d /tmp/aov-serve-smoke.XXXXXX)"
serve_log="$(mktemp /tmp/aov-serve-smoke-log.XXXXXX)"
serve_chaos_out="$(mktemp /tmp/aov-serve-smoke-chaos.XXXXXX.json)"
trap 'rm -f "$trace_file" "$bench_file" "$chaos_file" "$bad_file" "$profile_file" "$serve_log" "$serve_chaos_out"; rm -rf "$repro_dir" "$diag_dir" "$serve_diag"' EXIT
./target/release/aov aovd --addr 127.0.0.1:0 --no-memo --workers 2 \
    --diag-dir "$serve_diag" > "$serve_log" 2> /dev/null &
aovd_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^aovd: listening on //p' "$serve_log")"
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "serve smoke: daemon never reported a listen address"
    exit 1
fi
./target/release/aov client --addr "$addr" --example example1 \
    > /dev/null 2> /dev/null & c_healthy=$!
./target/release/aov client --addr "$addr" --example example1 \
    --budget-pivots 40 > /dev/null 2> /dev/null & c_budget=$!
./target/release/aov client --addr "$addr" --example example1 \
    --chaos site=serve.request,kind=panic \
    > "$serve_chaos_out" 2> /dev/null & c_chaos=$!
s_healthy=0; s_budget=0; s_chaos=0
wait "$c_healthy" || s_healthy=$?
wait "$c_budget" || s_budget=$?
wait "$c_chaos" || s_chaos=$?
if [ "$s_healthy" -ne 0 ]; then
    echo "serve smoke: healthy solve: expected exit 0, got $s_healthy"
    exit 1
fi
if [ "$s_budget" -ne 3 ]; then
    echo "serve smoke: budget-tripped solve: expected exit 3 (degraded), got $s_budget"
    exit 1
fi
if [ "$s_chaos" -ne 2 ]; then
    echo "serve smoke: chaos solve: expected exit 2 (error frame), got $s_chaos"
    exit 1
fi
if ! grep -q '"code": "fault"' "$serve_chaos_out"; then
    echo "serve smoke: chaos solve did not produce a structured fault frame"
    exit 1
fi
serve_bundles=("$serve_diag"/aov-diag-*.json)
if [ ! -f "${serve_bundles[0]}" ]; then
    echo "serve smoke: the injected service fault wrote no diagnostic bundle"
    exit 1
fi
./target/release/aov inspect "${serve_bundles[0]}" --check
# Capture before grepping: piping the live client into `grep -q` under
# pipefail races — grep exits at first match, the client takes SIGPIPE
# on its remaining output lines, and the pipeline reads as failed.
health_out="$(./target/release/aov client --addr "$addr" --health)"
if ! printf '%s' "$health_out" | grep -q '"status": "ok"'; then
    echo "serve smoke: post-fault health probe failed: $health_out"
    exit 1
fi
kill -TERM "$aovd_pid"
drain_status=0
wait "$aovd_pid" || drain_status=$?
if [ "$drain_status" -ne 0 ]; then
    echo "serve smoke: SIGTERM drain: expected exit 0, got $drain_status"
    exit 1
fi

echo "== telemetry smoke"
# aovd with the access log armed serves three clients (one
# budget-tripped, one following its solve live). The metrics verb must
# return a schema-valid aov-svcmetrics/1 document whose end-to-end p50
# is nonzero, the follow stream must yield at least one event frame,
# `aov top --once` must render, and the access log must validate
# line-by-line with one line per request.
telemetry_log="$(mktemp /tmp/aov-telemetry-log.XXXXXX)"
access_log="$(mktemp /tmp/aov-access-smoke.XXXXXX.jsonl)"
metrics_out="$(mktemp /tmp/aov-metrics-smoke.XXXXXX.json)"
watch_out="$(mktemp /tmp/aov-watch-smoke.XXXXXX)"
trap 'rm -f "$trace_file" "$bench_file" "$chaos_file" "$bad_file" "$profile_file" "$serve_log" "$serve_chaos_out" "$telemetry_log" "$access_log" "$access_log.1" "$metrics_out" "$watch_out"; rm -rf "$repro_dir" "$diag_dir" "$serve_diag"' EXIT
./target/release/aov aovd --addr 127.0.0.1:0 --no-memo --workers 2 \
    --access-log "$access_log" > "$telemetry_log" 2> /dev/null &
aovd2_pid=$!
addr2=""
for _ in $(seq 1 100); do
    addr2="$(sed -n 's/^aovd: listening on //p' "$telemetry_log")"
    [ -n "$addr2" ] && break
    sleep 0.1
done
if [ -z "$addr2" ]; then
    echo "telemetry smoke: daemon never reported a listen address"
    exit 1
fi
./target/release/aov client --addr "$addr2" --example example1 \
    > /dev/null 2> /dev/null & t_healthy=$!
./target/release/aov client --addr "$addr2" --example example1 \
    --budget-pivots 40 > /dev/null 2> /dev/null & t_budget=$!
./target/release/aov client --addr "$addr2" --example example1 --follow \
    > /dev/null 2> "$watch_out" & t_follow=$!
t1=0; t2=0; t3=0
wait "$t_healthy" || t1=$?
wait "$t_budget" || t2=$?
wait "$t_follow" || t3=$?
if [ "$t1" -ne 0 ] || [ "$t2" -ne 3 ] || [ "$t3" -ne 0 ]; then
    echo "telemetry smoke: client exits: healthy=$t1 (want 0), budget=$t2 (want 3), follow=$t3 (want 0)"
    exit 1
fi
if ! grep -q ' ns  t' "$watch_out"; then
    echo "telemetry smoke: --follow streamed no event frames"
    exit 1
fi
if ! grep -q 'watch ended (done)' "$watch_out"; then
    echo "telemetry smoke: --follow stream did not terminate with watch_end"
    exit 1
fi
./target/release/aov client --addr "$addr2" --metrics > "$metrics_out"
./target/release/aov inspect "$metrics_out" --check
if ! sed -n '/"name": "end_to_end"/,/"p50_ns"/p' "$metrics_out" \
    | grep -q '"p50_ns": [1-9]'; then
    echo "telemetry smoke: end_to_end p50 is zero or missing"
    exit 1
fi
./target/release/aov top "$addr2" --once > /dev/null
./target/release/aov inspect "$access_log" --check
if [ "$(grep -c '"schema":"aov-access/1"' "$access_log")" -lt 3 ]; then
    echo "telemetry smoke: access log is missing request lines:"
    cat "$access_log"
    exit 1
fi
kill -TERM "$aovd2_pid"
drain2_status=0
wait "$aovd2_pid" || drain2_status=$?
if [ "$drain2_status" -ne 0 ]; then
    echo "telemetry smoke: SIGTERM drain: expected exit 0, got $drain2_status"
    exit 1
fi

echo "CI green."
