#!/usr/bin/env bash
# Hermetic CI gate: format, lint, build, test — all offline.
#
# The workspace has zero external dependencies by design (see
# crates/support), so every step runs with --offline and must succeed
# with no registry access at all.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo build --release --offline"
cargo build --release --offline --workspace

echo "== cargo test -q --offline"
cargo test -q --offline --workspace

echo "== trace smoke"
trace_file="$(mktemp /tmp/aov-trace-smoke.XXXXXX.json)"
bench_file="$(mktemp /tmp/aov-bench-smoke.XXXXXX.json)"
trap 'rm -f "$trace_file" "$bench_file"' EXIT
./target/release/aov example1 --memoize --trace "$trace_file" --profile \
    --compact > /dev/null
./target/release/aov --check-trace "$trace_file"

echo "== bench smoke"
# Tiny observatory run: one example, two repetitions, reduced machine
# sweeps. Produces an artifact, validates it against the schema, and
# exercises the comparator in no-baseline mode (nothing to gate on).
./target/release/aov bench --examples example1 --runs 2 --quick \
    --out "$bench_file"
./target/release/aov bench --check "$bench_file"

echo "CI green."
