#!/usr/bin/env bash
# Hermetic CI gate: format, lint, build, test — all offline.
#
# The workspace has zero external dependencies by design (see
# crates/support), so every step runs with --offline and must succeed
# with no registry access at all.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo build --release --offline"
cargo build --release --offline --workspace

echo "== cargo test -q --offline"
cargo test -q --offline --workspace

echo "CI green."
