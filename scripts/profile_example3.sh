#!/usr/bin/env bash
# Profile the heaviest analysis in the suite: Example 3 (19 dependences,
# 27 sign patterns) through the full pipeline, with the LP memo cache on
# and the per-orthant solvers fanned out.
#
# Writes a Chrome trace-event file and prints the per-span flame table
# plus the memo hit rate to stderr. Load the trace in
# https://ui.perfetto.dev or chrome://tracing — one track per worker
# thread, pipeline stages as root spans.
#
# Usage: scripts/profile_example3.sh [trace-file] [workers]
set -euo pipefail
cd "$(dirname "$0")/.."

trace_file="${1:-/tmp/aov-example3-trace.json}"
workers="${2:-8}"

cargo build --release --offline --workspace

./target/release/aov example3 --memoize --workers "$workers" \
    --profile --trace "$trace_file" --compact > /dev/null

./target/release/aov --check-trace "$trace_file"
echo "Load $trace_file in https://ui.perfetto.dev to explore the run."
