#!/usr/bin/env bash
# Back-compat wrapper: profile the heaviest analysis in the suite
# (Example 3 — 19 dependences, 27 sign patterns). See scripts/profile.sh
# for the general form.
#
# Usage: scripts/profile_example3.sh [trace-file] [workers] [--mem]
exec "$(dirname "$0")/profile.sh" example3 "$@"
